"""Staged rollout plans: which hosts change, in which waves.

A :class:`RolloutPlan` partitions a fleet into ordered *waves*.  The
orchestrator (:mod:`repro.fleet.orchestrator`) drives one wave at a
time: install on every host of the wave, await Acks, health-gate,
then advance.  The first wave is the *canary* — plans built with
:meth:`RolloutPlan.by_percent` put explicitly named canary hosts
first and keep the canary wave small (default 1% of the fleet,
rounded up), so a bad program burns one enclave, not a thousand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class PlanError(Exception):
    """A rollout plan was malformed."""


#: Default cumulative percentage boundaries: canary, then widening
#: blast radius (the classic 1/10/40/100 staged-deploy split).
DEFAULT_PERCENTS: Tuple[int, ...] = (1, 10, 40, 100)


@dataclass(frozen=True)
class Wave:
    """One ordered group of hosts updated together."""

    index: int
    hosts: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.hosts)


class RolloutPlan:
    """An ordered, non-overlapping partition of the fleet."""

    def __init__(self, groups: Sequence[Sequence[str]]) -> None:
        if not groups:
            raise PlanError("a rollout plan needs at least one wave")
        seen = set()
        waves: List[Wave] = []
        for i, group in enumerate(groups):
            hosts = tuple(group)
            if not hosts:
                raise PlanError(f"wave {i} is empty")
            for host in hosts:
                if host in seen:
                    raise PlanError(
                        f"host {host!r} appears in two waves")
                seen.add(host)
            waves.append(Wave(index=i, hosts=hosts))
        self.waves: Tuple[Wave, ...] = tuple(waves)

    # -- constructors ------------------------------------------------------

    @classmethod
    def explicit(cls, groups: Sequence[Sequence[str]]) -> "RolloutPlan":
        """Waves given as explicit host groups, in rollout order."""
        return cls(groups)

    @classmethod
    def by_percent(cls, hosts: Sequence[str],
                   percents: Sequence[float] = DEFAULT_PERCENTS,
                   canary_hosts: Optional[Iterable[str]] = None,
                   ) -> "RolloutPlan":
        """Waves cut at cumulative percentage boundaries.

        ``percents`` are cumulative fleet fractions, strictly
        increasing and ending at 100.  ``canary_hosts`` (optional) are
        moved to the front of the rollout order so they land in the
        earliest wave(s); remaining hosts keep their given order.
        Every boundary is rounded up and forced to cover at least one
        new host, so small fleets still get distinct waves where
        possible.
        """
        ordered = cls._canary_first(hosts, canary_hosts)
        n = len(ordered)
        if n == 0:
            raise PlanError("no hosts to roll out to")
        if not percents or percents[-1] != 100:
            raise PlanError("percents must end at 100")
        last = 0.0
        for p in percents:
            if not 0 < p <= 100:
                raise PlanError(f"percent {p} out of (0, 100]")
            if p <= last:
                raise PlanError(
                    "percents must be strictly increasing")
            last = p
        groups: List[List[str]] = []
        start = 0
        for p in percents:
            end = min(n, max(math.ceil(n * p / 100.0), start + 1))
            if end > start:
                groups.append(list(ordered[start:end]))
                start = end
        return cls(groups)

    @staticmethod
    def _canary_first(hosts: Sequence[str],
                      canary_hosts: Optional[Iterable[str]],
                      ) -> List[str]:
        if canary_hosts is None:
            return list(hosts)
        canaries = list(canary_hosts)
        host_set = set(hosts)
        for c in canaries:
            if c not in host_set:
                raise PlanError(f"canary host {c!r} not in fleet")
        canary_set = set(canaries)
        return canaries + [h for h in hosts if h not in canary_set]

    # -- views -------------------------------------------------------------

    def hosts(self) -> List[str]:
        """All hosts, in rollout order."""
        return [h for wave in self.waves for h in wave.hosts]

    @property
    def canary(self) -> Wave:
        return self.waves[0]

    def __len__(self) -> int:
        return len(self.waves)

    def __iter__(self) -> Iterator[Wave]:
        return iter(self.waves)

    def describe(self) -> str:
        total = len(self.hosts())
        parts = []
        cum = 0
        for wave in self.waves:
            cum += len(wave)
            parts.append(f"w{wave.index}:{len(wave)}"
                         f"({100.0 * cum / total:.0f}%)")
        return f"{total} hosts in {len(self.waves)} waves: " + \
            " ".join(parts)

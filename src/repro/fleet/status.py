"""Per-enclave and per-wave rollout bookkeeping.

The orchestrator tracks every enclave through a small lifecycle::

    PENDING -> INSTALLING -> ACKED -> CONFIRMED
                   |            |
                   +------------+--> FAILED
                                       |
                ROLLING_BACK <---------+     (wave-level decision)
                      |
                 ROLLED_BACK

``ACKED`` means every config send of the wave's program was
acknowledged by the agent (the channel's exactly-once delivery
succeeded); ``CONFIRMED`` additionally means the health gate passed —
the agent's own ``StatsReport`` telemetry shows it running the target
epoch and healthy.  The distinction is the point: an Ack proves
delivery, a report proves the enclave *survived* the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

# Host lifecycle states.
PENDING = "pending"
INSTALLING = "installing"
ACKED = "acked"
CONFIRMED = "confirmed"
FAILED = "failed"
ROLLING_BACK = "rolling-back"
ROLLED_BACK = "rolled-back"

# Wave outcomes.
WAVE_RUNNING = "running"
WAVE_CONFIRMED = "confirmed"
WAVE_FAILED = "failed"
WAVE_ABANDONED = "abandoned"


@dataclass
class HostStatus:
    """One enclave's progress through the current rollout."""

    host: str
    wave: int = -1
    state: str = PENDING
    #: Desired epoch this rollout drove the host to.
    target_epoch: int = 0
    installed_at_ns: int = -1
    acked_at_ns: int = -1
    confirmed_at_ns: int = -1
    #: Stale-epoch Nacks observed for this host during the rollout.
    stale_nacks: int = 0
    #: Reliable sends that failed outright (retries exhausted or
    #: rejected with a non-stale reason).
    send_failures: int = 0
    failure_reason: str = ""

    @property
    def done(self) -> bool:
        return self.state in (CONFIRMED, FAILED, ROLLED_BACK)


@dataclass
class WaveRecord:
    """Timing and outcome of one wave."""

    index: int
    hosts: Tuple[str, ...]
    started_ns: int = -1
    #: All hosts Acked every send of the wave program.
    acked_ns: int = -1
    #: All hosts passed the health gate.
    confirmed_ns: int = -1
    outcome: str = WAVE_RUNNING
    failure_reason: str = ""

    @property
    def duration_ns(self) -> Optional[int]:
        if self.confirmed_ns < 0 or self.started_ns < 0:
            return None
        return self.confirmed_ns - self.started_ns


@dataclass
class RolloutStatus:
    """Aggregated view the orchestrator exposes to callers."""

    state: str
    current_wave: int
    waves: List[WaveRecord] = field(default_factory=list)
    hosts: List[HostStatus] = field(default_factory=list)

    def counts(self) -> dict:
        out: dict = {}
        for hs in self.hosts:
            out[hs.state] = out.get(hs.state, 0) + 1
        return out

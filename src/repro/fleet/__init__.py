"""Staged fleet rollouts over the Eden control plane.

The paper's controller programs each enclave individually; this
package turns that primitive into a *fleet* operation: an ordered
:class:`RolloutPlan` of canary-first waves, a :class:`FleetProgram`
of control-plane ops, and a :class:`FleetOrchestrator` that drives
install -> Ack -> health-gate -> advance / pause / roll back — all
through the existing reliable channel, so epoch fencing, loss
recovery and restart replay behave identically at 3 hosts and at
1024.  Fleet-scale runs use the sharded control fabric
(:mod:`repro.fleet.shardfleet`); the convergence benchmark and the
DDoS-mitigation scenario live in :mod:`repro.fleet.bench` and
:mod:`repro.fleet.ddos` (imported on demand — they pull in the
function library).  See ``docs/FLEET.md``.
"""

from .health import (CallbackGate, EpochHealthGate, FAIL, HEALTHY,
                     HealthGate, HostHealth, WAIT)
from .orchestrator import (ABORTED, DONE, FleetOrchestrator, IDLE,
                           OrchestratorError, PAUSE, PAUSED, ROLLBACK,
                           ROLLED_BACK_FLEET, ROLLING_BACK_FLEET,
                           RUNNING, RolloutConfig, SETTLING, TERMINAL)
from .plan import DEFAULT_PERCENTS, PlanError, RolloutPlan, Wave
from .program import (FleetOp, FleetProgram, InstallFunctionOp,
                      InstallRuleOp, PerHost, ProgramBuilder,
                      ProgramError, RemoveFunctionOp,
                      ReplaceFunctionOp, SetGlobalOp)
from .shardfleet import (CONTROLLER_SHARD, FabricError,
                         ShardedControlFabric, ShardedFleet)
from .status import (ACKED, CONFIRMED, FAILED, HostStatus, INSTALLING,
                     PENDING, ROLLED_BACK, ROLLING_BACK, RolloutStatus,
                     WAVE_ABANDONED, WAVE_CONFIRMED, WAVE_FAILED,
                     WAVE_RUNNING, WaveRecord)

__all__ = [
    "ABORTED", "ACKED", "CONFIRMED", "CONTROLLER_SHARD",
    "CallbackGate", "DEFAULT_PERCENTS", "DONE", "EpochHealthGate",
    "FAIL", "FAILED", "FabricError", "FleetOp", "FleetOrchestrator",
    "FleetProgram", "HEALTHY", "HealthGate", "HostHealth",
    "HostStatus", "IDLE", "INSTALLING", "InstallFunctionOp",
    "InstallRuleOp", "OrchestratorError", "PAUSE", "PAUSED",
    "PENDING", "PerHost", "PlanError", "ProgramBuilder",
    "ProgramError", "ROLLBACK", "ROLLED_BACK", "ROLLED_BACK_FLEET",
    "ROLLING_BACK", "ROLLING_BACK_FLEET", "RUNNING",
    "RemoveFunctionOp", "ReplaceFunctionOp", "RolloutConfig",
    "RolloutPlan", "RolloutStatus", "SETTLING", "SetGlobalOp",
    "ShardedControlFabric", "ShardedFleet", "TERMINAL", "WAIT",
    "WAVE_ABANDONED", "WAVE_CONFIRMED", "WAVE_FAILED",
    "WAVE_RUNNING", "Wave", "WaveRecord",
]

"""Health gates: is an updated enclave actually healthy?

An Ack only proves the config message was applied; the health gate
decides whether the *enclave survived the change* before the rollout
widens its blast radius.  Gates read a :class:`HostHealth` view —
channel convergence plus the freshest ``StatsReport`` (whose
``health`` mapping the agent fills from its
:meth:`~repro.control.agent.EnclaveAgent.set_health_source`) — and
return one of three verdicts:

``HEALTHY``
    confirm the host; the wave may advance once all hosts confirm.
``WAIT``
    not enough evidence yet (no fresh report, epoch lagging); keep
    polling until the wave times out.
``FAIL``
    positive evidence of breakage; the wave fails immediately and the
    orchestrator pauses or rolls back per policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..control.messages import StatsReport

HEALTHY = "healthy"
WAIT = "wait"
FAIL = "fail"


@dataclass
class HostHealth:
    """Everything a gate may consult about one host."""

    host: str
    now_ns: int
    #: Channel-level convergence: no pending sends and the agent's
    #: last report carries at least the target epoch.
    in_sync: bool
    target_epoch: int
    #: Freshest StatsReport, or None if the host never reported.
    report: Optional[StatsReport] = None

    @property
    def report_age_ns(self) -> Optional[int]:
        if self.report is None:
            return None
        return self.now_ns - self.report.at_ns


class HealthGate:
    """Default gate: healthy as soon as the channel converged."""

    def verdict(self, health: HostHealth) -> str:
        return HEALTHY if health.in_sync else WAIT


class EpochHealthGate(HealthGate):
    """Production-shaped gate: fresh post-update telemetry, no
    interpreter faults, required functions present.

    - the agent must have *reported at the target epoch* within
      ``max_report_age_ns`` (an enclave that applied the config and
      then wedged stops confirming);
    - any per-function ``faults`` increment observed at the target
      epoch fails the wave (the program crashes in situ);
    - ``require_functions`` must all appear in the report's stats
      (the data plane is actually running the program);
    - a ``health`` mapping with ``ok: False`` fails the wave
      (agent-local probe said so).
    """

    def __init__(self, max_report_age_ns: int,
                 require_functions: Sequence[str] = (),
                 max_faults: int = 0) -> None:
        self.max_report_age_ns = max_report_age_ns
        self.require_functions = tuple(require_functions)
        self.max_faults = max_faults

    def verdict(self, health: HostHealth) -> str:
        if not health.in_sync:
            return WAIT
        report = health.report
        if report is None or \
                report.applied_epoch < health.target_epoch:
            return WAIT
        age = health.report_age_ns
        if age is None or age > self.max_report_age_ns:
            return WAIT
        if report.health.get("ok") is False:
            return FAIL
        faults = sum(int(f.get("faults", 0))
                     for f in report.stats.values())
        if faults > self.max_faults:
            return FAIL
        for name in self.require_functions:
            if name not in report.stats:
                return WAIT
        return HEALTHY


class CallbackGate(HealthGate):
    """Wrap an arbitrary ``fn(HostHealth) -> verdict``."""

    def __init__(self, fn: Callable[[HostHealth], str]) -> None:
        self.fn = fn

    def verdict(self, health: HostHealth) -> str:
        return self.fn(health)

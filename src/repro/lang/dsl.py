"""DSL frontend: capture and lower restricted Python action functions.

The paper writes action functions in a subset of F# and captures their
abstract syntax tree with code quotations (Section 3.4.2).  The Python
analog is direct: an action function is written as a plain Python
function, its source is recovered with :func:`inspect.getsource` (the
"quotation"), parsed with :mod:`ast`, checked against the language
restrictions, and lowered to the typed AST in
:mod:`repro.lang.ast_nodes`.

The language subset mirrors the paper's:

* integers only — no floats, strings, objects or exceptions;
* assignments, ``if``/``elif``/``else``, ``while``, ``for i in range``,
  ``break``/``continue``, ``return``;
* one level of nested function definitions, including recursion (the
  compiler turns tail recursion into loops);
* reads/writes of the three state parameters (packet, message, global)
  according to their schema annotations;
* builtins ``rand(bound)``, ``clock()``, ``len(array)`` plus the pure
  sugar ``abs``/``min``/``max``.

Nested functions may read (but not assign) locals of the enclosing
action function; the frontend lambda-lifts such captures into hidden
trailing parameters so the backends never see closures.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from . import ast_nodes as T
from .annotations import AccessLevel, Field, FieldKind, Schema
from .bytecode import ArrayRef, FieldRef

SCOPE_ORDER = ("packet", "message", "global")
BUILTINS = ("rand", "clock")
PURE_SUGAR = ("abs", "min", "max")


class DslError(Exception):
    """The action function uses a construct outside the DSL subset."""

    def __init__(self, message: str, node: Optional[ast.AST] = None):
        if node is not None and hasattr(node, "lineno"):
            message = f"line {node.lineno}: {message}"
        super().__init__(message)


def quote(fn: Union[Callable, str]) -> ast.FunctionDef:
    """Recover the AST of an action function (the "code quotation").

    Accepts either a live function object or its source text.  Returns
    the ``ast.FunctionDef`` node of the outermost function.
    """
    if callable(fn):
        try:
            source = inspect.getsource(fn)
        except (OSError, TypeError) as exc:
            raise DslError(
                f"cannot recover source of {fn!r}: {exc}") from exc
    else:
        source = fn
    source = textwrap.dedent(source)
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise DslError(f"invalid syntax: {exc}") from exc
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise DslError("source does not contain a function definition")


def source_of(fn: Union[Callable, str]) -> str:
    if callable(fn):
        return textwrap.dedent(inspect.getsource(fn))
    return textwrap.dedent(fn)


@dataclass
class _FnInfo:
    """Book-keeping for one function during lowering."""

    node: ast.FunctionDef
    params: List[str]
    assigned: Set[str]
    captures: List[str]
    index: int


class Lowerer:
    """Lower one action function to :class:`~.ast_nodes.ProgramAST`."""

    def __init__(self,
                 packet_schema: Optional[Schema] = None,
                 message_schema: Optional[Schema] = None,
                 global_schema: Optional[Schema] = None) -> None:
        self._schemas: Dict[str, Optional[Schema]] = {
            "packet": packet_schema,
            "message": message_schema,
            "global": global_schema,
        }
        # param-name -> scope ("packet" / "message" / "global")
        self._state_params: Dict[str, str] = {}
        self._field_table: List[FieldRef] = []
        self._field_index: Dict[Tuple[str, str], int] = {}
        self._array_table: List[ArrayRef] = []
        self._array_index: Dict[Tuple[str, str], int] = {}
        self._fns: Dict[str, _FnInfo] = {}
        self._fn_order: List[str] = []

    # -- public entry -------------------------------------------------

    def lower(self, fn: Union[Callable, str],
              name: Optional[str] = None) -> T.ProgramAST:
        node = quote(fn)
        source = source_of(fn)
        prog_name = name or node.name
        self._bind_state_params(node)
        self._collect_functions(node)
        self._resolve_captures()

        functions: List[T.FunctionDef] = []
        for fn_name in self._fn_order:
            functions.append(self._lower_function(self._fns[fn_name]))
        return T.ProgramAST(
            name=prog_name,
            functions=tuple(functions),
            field_table=tuple(self._field_table),
            array_table=tuple(self._array_table),
            source=source,
        )

    # -- signature and nested-function discovery ----------------------

    #: Accepted parameter names per scope, mirroring the paper's
    #: ``fun(packet, msg, _global)`` signature (Figure 7).
    PARAM_SCOPES = {
        "packet": "packet", "pkt": "packet",
        "msg": "message", "message": "message",
        "_global": "global", "glob": "global",
    }

    def _bind_state_params(self, node: ast.FunctionDef) -> None:
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
            raise DslError(
                "action functions take only plain positional state "
                "parameters", node)
        for arg in args.args:
            scope = self.PARAM_SCOPES.get(arg.arg)
            if scope is None:
                raise DslError(
                    f"unknown state parameter {arg.arg!r}; use "
                    f"packet/pkt, msg/message, or _global/glob", node)
            if scope in self._state_params.values():
                raise DslError(
                    f"the {scope} scope is bound twice", node)
            if self._schemas[scope] is None:
                raise DslError(
                    f"parameter {arg.arg!r} binds the {scope} scope but "
                    f"no {scope} schema was provided", node)
            self._state_params[arg.arg] = scope

    def _collect_functions(self, node: ast.FunctionDef) -> None:
        """Register the entry function and its nested helpers."""
        self._register_function(node, is_entry=True)
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                self._register_function(stmt, is_entry=False)

    def _register_function(self, node: ast.FunctionDef,
                           is_entry: bool) -> None:
        if node.name in self._fns:
            raise DslError(f"function {node.name!r} defined twice", node)
        if is_entry:
            params: List[str] = []
        else:
            args = node.args
            if args.vararg or args.kwarg or args.kwonlyargs or \
                    args.defaults:
                raise DslError(
                    "nested functions take only plain positional "
                    "parameters", node)
            params = [a.arg for a in args.args]
            for p in params:
                if p in self._state_params:
                    raise DslError(
                        f"nested function parameter {p!r} shadows a "
                        f"state parameter", node)
        for inner in ast.walk(node):
            if inner is not node and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef,
                            ast.Lambda)) and not is_entry:
                raise DslError(
                    "nested functions may not define further functions",
                    inner)
        assigned = set(params)
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and \
                    isinstance(inner.ctx, ast.Store):
                assigned.add(inner.id)
            elif isinstance(inner, ast.FunctionDef) and inner is not node:
                # Skip names assigned inside nested defs of the entry.
                pass
        if not is_entry:
            info = _FnInfo(node=node, params=params, assigned=assigned,
                           captures=[], index=len(self._fn_order))
        else:
            # For the entry, re-compute assigned names excluding nested
            # function bodies (they have their own scopes).
            assigned = set()
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    continue
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Name) and \
                            isinstance(inner.ctx, ast.Store):
                        assigned.add(inner.id)
            info = _FnInfo(node=node, params=[], assigned=assigned,
                           captures=[], index=0)
        self._fns[node.name] = info
        self._fn_order.append(node.name)

    def _resolve_captures(self) -> None:
        """Lambda-lift: compute, to a fixpoint, the entry locals each
        nested function needs as hidden trailing parameters."""
        entry = self._fns[self._fn_order[0]]
        changed = True
        while changed:
            changed = False
            for fn_name in self._fn_order[1:]:
                info = self._fns[fn_name]
                free = self._free_names(info)
                for name in free:
                    if name in entry.assigned and \
                            name not in info.captures:
                        info.captures.append(name)
                        changed = True

    def _free_names(self, info: _FnInfo) -> List[str]:
        """Names read in ``info`` that are not bound locally.

        Includes the captures of callees (they become call-site
        arguments and must therefore be in scope here too).
        """
        bound = set(info.params) | info.assigned | set(info.captures)
        free: List[str] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                name = node.id
                if name in bound or name in self._state_params:
                    continue
                if name in self._fns or name in BUILTINS or \
                        name in PURE_SUGAR or name in ("True", "False",
                                                       "len", "range"):
                    continue
                if name not in free:
                    free.append(name)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in self._fns:
                for captured in self._fns[node.func.id].captures:
                    if captured not in bound and captured not in free:
                        free.append(captured)
        return free

    # -- per-function lowering -----------------------------------------

    def _lower_function(self, info: _FnInfo) -> T.FunctionDef:
        ctx = _FunctionCtx(self, info)
        body_stmts = [s for s in info.node.body
                      if not isinstance(s, ast.FunctionDef)]
        body = ctx.lower_block(body_stmts, definitely=set(ctx.params))
        return T.FunctionDef(
            name=info.node.name,
            params=tuple(ctx.params),
            n_locals=len(ctx.slots),
            body=tuple(body),
        )

    # -- shared table helpers -------------------------------------------

    def field_ref(self, scope: str, field: Field,
                  node: ast.AST) -> int:
        key = (scope, field.name)
        if key not in self._field_index:
            self._field_index[key] = len(self._field_table)
            self._field_table.append(FieldRef(
                scope=scope, name=field.name,
                writable=field.access is AccessLevel.READ_WRITE))
        return self._field_index[key]

    def array_ref(self, scope: str, field: Field,
                  node: ast.AST) -> int:
        key = (scope, field.name)
        if key not in self._array_index:
            self._array_index[key] = len(self._array_table)
            self._array_table.append(ArrayRef(
                scope=scope, name=field.name, stride=field.stride,
                writable=field.access is AccessLevel.READ_WRITE))
        return self._array_index[key]

    def schema_for(self, scope: str) -> Schema:
        sch = self._schemas[scope]
        assert sch is not None
        return sch


class _FunctionCtx:
    """Lowering context for one function: local slots + statement and
    expression translation."""

    def __init__(self, lowerer: Lowerer, info: _FnInfo) -> None:
        self.lowerer = lowerer
        self.info = info
        self.params = list(info.params) + list(info.captures)
        self.slots: Dict[str, int] = {
            name: i for i, name in enumerate(self.params)}
        self._loop_depth = 0
        self._tmp_counter = 0

    # -- slots ---------------------------------------------------------

    def slot_for(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.slots[name]

    def fresh_tmp(self) -> str:
        self._tmp_counter += 1
        return f"__tmp{self._tmp_counter}"

    # -- statements -----------------------------------------------------

    def lower_block(self, stmts: Sequence[ast.stmt],
                    definitely: Set[str]) -> List[T.Stmt]:
        out: List[T.Stmt] = []
        for stmt in stmts:
            out.extend(self.lower_stmt(stmt, definitely))
        return out

    def lower_stmt(self, stmt: ast.stmt,
                   definitely: Set[str]) -> List[T.Stmt]:
        if isinstance(stmt, ast.Assign):
            return [self._lower_assign(stmt, definitely)]
        if isinstance(stmt, ast.AugAssign):
            return [self._lower_aug_assign(stmt, definitely)]
        if isinstance(stmt, ast.AnnAssign):
            raise DslError("annotated assignments are not supported",
                           stmt)
        if isinstance(stmt, ast.If):
            return [self._lower_if(stmt, definitely)]
        if isinstance(stmt, ast.While):
            return [self._lower_while(stmt, definitely)]
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, definitely)
        if isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise DslError("break outside loop", stmt)
            return [T.Break()]
        if isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise DslError("continue outside loop", stmt)
            return [T.Continue()]
        if isinstance(stmt, ast.Return):
            value = (self.lower_expr(stmt.value, definitely)
                     if stmt.value is not None else None)
            return [T.Return(value)]
        if isinstance(stmt, ast.Pass):
            return [T.Pass()]
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant) and \
                    isinstance(stmt.value.value, str):
                return []  # docstring
            return [T.ExprStmt(self.lower_expr(stmt.value, definitely))]
        raise DslError(
            f"statement {type(stmt).__name__} is outside the DSL subset",
            stmt)

    def _lower_assign(self, stmt: ast.Assign,
                      definitely: Set[str]) -> T.Stmt:
        if len(stmt.targets) != 1:
            raise DslError("chained assignment is not supported", stmt)
        value = self.lower_expr(stmt.value, definitely)
        return self._store(stmt.targets[0], value, definitely)

    def _lower_aug_assign(self, stmt: ast.AugAssign,
                          definitely: Set[str]) -> T.Stmt:
        op = _BINOPS.get(type(stmt.op))
        if op is None:
            raise DslError(
                f"augmented operator {type(stmt.op).__name__} is not "
                f"supported", stmt)
        load_target = _as_load(stmt.target)
        current = self.lower_expr(load_target, definitely)
        value = T.BinOp(op, current,
                        self.lower_expr(stmt.value, definitely))
        return self._store(stmt.target, value, definitely)

    def _store(self, target: ast.expr, value: T.Expr,
               definitely: Set[str]) -> T.Stmt:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.lowerer._state_params:
                raise DslError(
                    f"cannot rebind state parameter {name!r}", target)
            if name in self.lowerer._fns:
                raise DslError(
                    f"cannot rebind function {name!r}", target)
            if name in self.info.captures:
                raise DslError(
                    f"nested function may not assign captured variable "
                    f"{name!r}", target)
            slot = self.slot_for(name)
            definitely.add(name)
            return T.AssignLocal(name=name, slot=slot, value=value)
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Subscript):
                return self._store_array(target, value, definitely)
            scope, field = self._resolve_state_attr(target)
            if field.is_array:
                raise DslError(
                    f"cannot assign whole array {field.name!r}", target)
            if field.access is not AccessLevel.READ_WRITE:
                raise DslError(
                    f"{scope}.{field.name} is read-only", target)
            index = self.lowerer.field_ref(scope, field, target)
            return T.AssignState(scope=scope, name=field.name,
                                 index=index, value=value)
        if isinstance(target, ast.Subscript):
            return self._store_array(target, value, definitely)
        if isinstance(target, ast.Tuple):
            raise DslError("tuple unpacking is not supported", target)
        raise DslError("unsupported assignment target", target)

    def _store_array(self, target: ast.expr, value: T.Expr,
                     definitely: Set[str]) -> T.Stmt:
        scope, field, index_node, offset = \
            self._resolve_array_access(target)
        if field.access is not AccessLevel.READ_WRITE:
            raise DslError(f"{scope}.{field.name} is read-only", target)
        array_index = self.lowerer.array_ref(scope, field, target)
        return T.AssignArray(
            scope=scope, name=field.name, array_index=array_index,
            stride=field.stride, offset=offset,
            index=self.lower_expr(index_node, definitely), value=value)

    def _lower_if(self, stmt: ast.If,
                  definitely: Set[str]) -> T.Stmt:
        cond = self.lower_expr(stmt.test, definitely)
        then_defs = set(definitely)
        then = self.lower_block(stmt.body, then_defs)
        else_defs = set(definitely)
        orelse = self.lower_block(stmt.orelse, else_defs)
        definitely |= (then_defs & else_defs)
        return T.If(cond=cond, then=tuple(then), orelse=tuple(orelse))

    def _lower_while(self, stmt: ast.While,
                     definitely: Set[str]) -> T.Stmt:
        if stmt.orelse:
            raise DslError("while/else is not supported", stmt)
        cond = self.lower_expr(stmt.test, definitely)
        self._loop_depth += 1
        body_defs = set(definitely)
        body = self.lower_block(stmt.body, body_defs)
        self._loop_depth -= 1
        return T.While(cond=cond, body=tuple(body))

    def _lower_for(self, stmt: ast.For,
                   definitely: Set[str]) -> List[T.Stmt]:
        """Desugar ``for i in range(...)`` into a while loop."""
        if stmt.orelse:
            raise DslError("for/else is not supported", stmt)
        call = stmt.iter
        if not (isinstance(call, ast.Call) and
                isinstance(call.func, ast.Name) and
                call.func.id == "range" and not call.keywords):
            raise DslError(
                "only `for <name> in range(...)` loops are supported",
                stmt)
        if not isinstance(stmt.target, ast.Name):
            raise DslError("loop variable must be a simple name", stmt)
        args = call.args
        if not 1 <= len(args) <= 3:
            raise DslError("range takes 1 to 3 arguments", stmt)
        step = 1
        if len(args) == 3:
            step_node = args[2]
            neg = False
            if isinstance(step_node, ast.UnaryOp) and \
                    isinstance(step_node.op, ast.USub):
                neg = True
                step_node = step_node.operand
            if not (isinstance(step_node, ast.Constant) and
                    isinstance(step_node.value, int)):
                raise DslError(
                    "range step must be an integer constant", stmt)
            step = -step_node.value if neg else step_node.value
            if step == 0:
                raise DslError("range step must be non-zero", stmt)
        if len(args) == 1:
            start: T.Expr = T.Const(0)
            stop = self.lower_expr(args[0], definitely)
        else:
            start = self.lower_expr(args[0], definitely)
            stop = self.lower_expr(args[1], definitely)

        var = stmt.target.id
        var_slot = self.slot_for(var)
        definitely.add(var)
        stop_name = self.fresh_tmp()
        stop_slot = self.slot_for(stop_name)
        definitely.add(stop_name)
        # The increment runs at the top of the loop body (the variable
        # is pre-initialized one step low) so that `continue` inside
        # the body still advances the induction variable.
        out: List[T.Stmt] = [
            T.AssignLocal(var, var_slot,
                          T.BinOp("-", start, T.Const(step))),
            T.AssignLocal(stop_name, stop_slot, stop),
        ]
        cmp_op = "<" if step > 0 else ">"
        exit_cond = T.Compare(cmp_op, T.LocalRef(var, var_slot),
                              T.LocalRef(stop_name, stop_slot))
        self._loop_depth += 1
        body_defs = set(definitely)
        body = self.lower_block(stmt.body, body_defs)
        self._loop_depth -= 1
        loop_body: List[T.Stmt] = [
            T.AssignLocal(
                var, var_slot,
                T.BinOp("+", T.LocalRef(var, var_slot),
                        T.Const(step))),
            T.If(cond=T.UnaryOp("not", exit_cond),
                 then=(T.Break(),), orelse=()),
        ]
        loop_body.extend(body)
        out.append(T.While(cond=T.Const(1), body=tuple(loop_body)))
        return out

    # -- expressions ------------------------------------------------------

    def lower_expr(self, node: ast.expr,
                   definitely: Set[str]) -> T.Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return T.Const(1 if node.value else 0)
            if isinstance(node.value, int):
                return T.Const(node.value)
            raise DslError(
                f"constant {node.value!r} is not an integer (the DSL "
                f"has no floats, strings or objects)", node)
        if isinstance(node, ast.Name):
            return self._lower_name(node, definitely)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Subscript):
                return self._lower_array_read(node, definitely)
            scope, field = self._resolve_state_attr(node)
            if field.is_array:
                raise DslError(
                    f"array {scope}.{field.name} must be indexed or "
                    f"passed to len()", node)
            index = self.lowerer.field_ref(scope, field, node)
            return T.StateRef(scope=scope, name=field.name, index=index)
        if isinstance(node, ast.Subscript):
            return self._lower_array_read(node, definitely)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise DslError(
                    f"operator {type(node.op).__name__} is not in the "
                    f"DSL subset (no floats: use //)", node)
            return T.BinOp(op, self.lower_expr(node.left, definitely),
                           self.lower_expr(node.right, definitely))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return T.UnaryOp("-",
                                 self.lower_expr(node.operand,
                                                 definitely))
            if isinstance(node.op, ast.Invert):
                return T.UnaryOp("~",
                                 self.lower_expr(node.operand,
                                                 definitely))
            if isinstance(node.op, ast.Not):
                return T.UnaryOp("not",
                                 self.lower_expr(node.operand,
                                                 definitely))
            if isinstance(node.op, ast.UAdd):
                return self.lower_expr(node.operand, definitely)
            raise DslError("unsupported unary operator", node)
        if isinstance(node, ast.Compare):
            return self._lower_compare(node, definitely)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            operands = tuple(self.lower_expr(v, definitely)
                             for v in node.values)
            return T.BoolOp(op, operands)
        if isinstance(node, ast.IfExp):
            return T.IfExp(
                cond=self.lower_expr(node.test, definitely),
                then=self.lower_expr(node.body, definitely),
                orelse=self.lower_expr(node.orelse, definitely))
        if isinstance(node, ast.Call):
            return self._lower_call(node, definitely)
        raise DslError(
            f"expression {type(node).__name__} is outside the DSL "
            f"subset", node)

    def _lower_name(self, node: ast.Name,
                    definitely: Set[str]) -> T.Expr:
        name = node.id
        if name in self.lowerer._state_params:
            raise DslError(
                f"state parameter {name!r} cannot be used as a value; "
                f"access its fields instead", node)
        if name in self.lowerer._fns:
            raise DslError(
                f"function {name!r} can only be called", node)
        if name in self.slots or name in self.info.captures:
            if name not in definitely and \
                    name not in self.params:
                raise DslError(
                    f"local {name!r} may be used before assignment",
                    node)
            return T.LocalRef(name, self.slot_for(name))
        if name in self.info.assigned:
            raise DslError(
                f"local {name!r} may be used before assignment", node)
        raise DslError(f"unknown name {name!r}", node)

    def _lower_compare(self, node: ast.Compare,
                       definitely: Set[str]) -> T.Expr:
        ops = []
        for op in node.ops:
            sym = _CMPOPS.get(type(op))
            if sym is None:
                raise DslError(
                    f"comparison {type(op).__name__} is not supported "
                    f"(no `in`, no `is`)", node)
            ops.append(sym)
        operands = [self.lower_expr(node.left, definitely)]
        operands += [self.lower_expr(c, definitely)
                     for c in node.comparators]
        # a < b < c  ->  (a < b) and (b < c); rare in practice, but the
        # paper's language has chained comparisons via nesting anyway.
        comparisons = [
            T.Compare(sym, operands[i], operands[i + 1])
            for i, sym in enumerate(ops)
        ]
        if len(comparisons) == 1:
            return comparisons[0]
        return T.BoolOp("and", tuple(comparisons))

    def _lower_call(self, node: ast.Call,
                    definitely: Set[str]) -> T.Expr:
        if node.keywords:
            raise DslError("keyword arguments are not supported", node)
        if not isinstance(node.func, ast.Name):
            raise DslError("only direct calls by name are supported",
                           node)
        name = node.func.id
        if name == "len":
            if len(node.args) != 1:
                raise DslError("len takes exactly one argument", node)
            target = node.args[0]
            if not isinstance(target, ast.Attribute):
                raise DslError(
                    "len() applies only to array state fields", node)
            scope, field = self._resolve_state_attr(target)
            if not field.is_array:
                raise DslError(
                    f"{scope}.{field.name} is not an array", node)
            array_index = self.lowerer.array_ref(scope, field, node)
            return T.ArrayLen(scope=scope, name=field.name,
                              array_index=array_index)
        args = [self.lower_expr(a, definitely) for a in node.args]
        if name in BUILTINS:
            expected = {"rand": 1, "clock": 0}[name]
            if len(args) != expected:
                raise DslError(
                    f"{name} takes exactly {expected} argument(s)", node)
            return T.Builtin(name=name, args=tuple(args))
        if name in PURE_SUGAR:
            return self._lower_sugar(name, args, node)
        if name in self.lowerer._fns:
            info = self.lowerer._fns[name]
            if info.index == 0:
                raise DslError(
                    "the entry function cannot call itself", node)
            if len(args) != len(info.params):
                raise DslError(
                    f"{name} takes {len(info.params)} argument(s), got "
                    f"{len(args)}", node)
            hidden = []
            for captured in info.captures:
                hidden.append(self._lower_name(
                    ast.copy_location(ast.Name(id=captured,
                                               ctx=ast.Load()), node),
                    definitely))
            return T.Call(name=name, func_index=info.index,
                          args=tuple(args) + tuple(hidden))
        raise DslError(f"unknown function {name!r}", node)

    def _lower_sugar(self, name: str, args: List[T.Expr],
                     node: ast.Call) -> T.Expr:
        if name == "abs":
            if len(args) != 1:
                raise DslError("abs takes one argument", node)
            a = args[0]
            return T.IfExp(cond=T.Compare("<", a, T.Const(0)),
                           then=T.UnaryOp("-", a), orelse=a)
        if len(args) != 2:
            raise DslError(f"{name} takes exactly two arguments", node)
        a, b = args
        op = "<" if name == "min" else ">"
        return T.IfExp(cond=T.Compare(op, a, b), then=a, orelse=b)

    def _lower_array_read(self, node: ast.expr,
                          definitely: Set[str]) -> T.Expr:
        scope, field, index_node, offset = \
            self._resolve_array_access(node)
        array_index = self.lowerer.array_ref(scope, field, node)
        return T.ArrayIndex(
            scope=scope, name=field.name, array_index=array_index,
            stride=field.stride, offset=offset,
            index=self.lower_expr(index_node, definitely))

    # -- state resolution ------------------------------------------------

    def _resolve_state_attr(self, node: ast.Attribute
                            ) -> Tuple[str, Field]:
        """Resolve ``param.field`` against the schemas."""
        if not isinstance(node.value, ast.Name):
            raise DslError(
                "only single-level attribute access on state "
                "parameters is supported", node)
        pname = node.value.id
        scope = self.lowerer._state_params.get(pname)
        if scope is None:
            raise DslError(
                f"{pname!r} is not a state parameter", node)
        schema = self.lowerer.schema_for(scope)
        try:
            field = schema.field_named(node.attr)
        except Exception:
            raise DslError(
                f"schema {schema.name!r} ({scope}) has no field "
                f"{node.attr!r}; declared fields: "
                f"{', '.join(schema.field_names)}", node) from None
        return scope, field

    def _resolve_array_access(self, node: ast.expr
                              ) -> Tuple[str, Field, ast.expr, int]:
        """Resolve ``arr[i]`` or ``arr[i].member`` to (scope, field,
        index expression, record offset)."""
        member: Optional[str] = None
        if isinstance(node, ast.Attribute):
            member = node.attr
            node = node.value
        if not isinstance(node, ast.Subscript):
            raise DslError("expected an array subscript", node)
        index_node = node.slice
        if isinstance(index_node, ast.Slice):
            raise DslError("array slices are not supported", node)
        if not isinstance(node.value, ast.Attribute):
            raise DslError(
                "subscripts apply only to array state fields "
                "(e.g. _global.weights[i])", node)
        scope, field = self._resolve_state_attr(node.value)
        if not field.is_array:
            raise DslError(f"{scope}.{field.name} is not an array", node)
        if field.kind is FieldKind.RECORD_ARRAY:
            if member is None:
                raise DslError(
                    f"{scope}.{field.name} is a record array; access a "
                    f"member, e.g. {field.name}[i]."
                    f"{field.record_fields[0]}", node)
            offset = field.record_offset(member)
        else:
            if member is not None:
                raise DslError(
                    f"{scope}.{field.name} is a flat array and has no "
                    f"member {member!r}", node)
            offset = 0
        return scope, field, index_node, offset


_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.LShift: "<<", ast.RShift: ">>",
}

_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


def _as_load(node: ast.expr) -> ast.expr:
    """Deep-copy an assignment target as a Load-context expression."""
    import copy
    clone = copy.deepcopy(node)
    for sub in ast.walk(clone):
        if hasattr(sub, "ctx"):
            sub.ctx = ast.Load()
    return clone


def lower(fn: Union[Callable, str],
          packet_schema: Optional[Schema] = None,
          message_schema: Optional[Schema] = None,
          global_schema: Optional[Schema] = None,
          name: Optional[str] = None) -> T.ProgramAST:
    """Lower an action function to the typed AST.

    This is the main frontend entry point; the schemas bind the
    function's positional state parameters in order (packet, message,
    global).
    """
    lowerer = Lowerer(packet_schema=packet_schema,
                      message_schema=message_schema,
                      global_schema=global_schema)
    return lowerer.lower(fn, name=name)

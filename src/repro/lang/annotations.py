"""State annotations for Eden action functions.

The paper (Section 3.4.4, Figure 8) requires three kinds of type
annotations on the state an action function touches:

1. *Lifetime* — whether a variable lives for the duration of a packet, a
   message, or for as long as the function is installed (global).
2. *Access permissions* — read-only or read-write; these determine the
   concurrency level the enclave may use when invoking the function.
3. *Header mapping* — which packet-header field backs a packet-scoped
   variable (e.g. ``priority`` maps to the 802.1q priority code point).

In the paper these are .NET attributes on F# record types.  Here they are
plain declarative schema objects that the compiler consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple


class Lifetime(enum.Enum):
    """How long a piece of state outlives a single function invocation."""

    PACKET = "packet"
    MESSAGE = "message"
    GLOBAL = "global"


class AccessLevel(enum.Enum):
    """Access permission of the action function over a state variable."""

    READ_ONLY = "ro"
    READ_WRITE = "rw"


class FieldKind(enum.Enum):
    """Shape of a state variable as seen by the DSL."""

    INT = "int"
    ARRAY = "array"          # flat array of integers
    RECORD_ARRAY = "records"  # array of records with integer fields


@dataclass(frozen=True)
class Field:
    """A single named state variable within a scope.

    ``header_map`` only makes sense for packet-scoped fields and records
    the packet-header field that backs the variable, keyed by protocol
    (e.g. ``{"ipv4": "total_length"}``).

    ``record_fields`` is required when ``kind`` is ``RECORD_ARRAY`` and
    fixes the order (and thus heap layout) of the record's integer
    members.

    ``binder`` optionally overrides how the enclave runtime resolves the
    variable's value at invocation time.  It receives the packet view and
    the scope's backing store and returns the value (an int, or a sequence
    for arrays).  This is how per-packet keyed global state such as
    WCMP's ``pathMatrix[src, dst]`` is bound.
    """

    name: str
    access: AccessLevel = AccessLevel.READ_ONLY
    kind: FieldKind = FieldKind.INT
    header_map: Dict[str, str] = field(default_factory=dict)
    record_fields: Tuple[str, ...] = ()
    default: int = 0
    binder: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.kind is FieldKind.RECORD_ARRAY and not self.record_fields:
            raise ValueError(
                f"record array field {self.name!r} needs record_fields")
        if self.kind is not FieldKind.RECORD_ARRAY and self.record_fields:
            raise ValueError(
                f"field {self.name!r} is not a record array but has "
                f"record_fields")
        if self.kind is not FieldKind.INT and \
                self.access is AccessLevel.READ_WRITE and \
                self.binder is not None:
            raise ValueError(
                f"array field {self.name!r}: custom binders are only "
                f"supported for read-only arrays")

    @property
    def is_array(self) -> bool:
        return self.kind in (FieldKind.ARRAY, FieldKind.RECORD_ARRAY)

    @property
    def stride(self) -> int:
        """Heap words per element (1 for flat arrays)."""
        if self.kind is FieldKind.RECORD_ARRAY:
            return len(self.record_fields)
        return 1

    def record_offset(self, member: str) -> int:
        """Heap-word offset of ``member`` inside one record element."""
        try:
            return self.record_fields.index(member)
        except ValueError:
            raise KeyError(
                f"record array {self.name!r} has no member {member!r}; "
                f"members are {self.record_fields}") from None


class SchemaError(Exception):
    """A schema was declared inconsistently or a lookup failed."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Field` bound to one lifetime.

    An action function takes up to three schemas — one per parameter
    (``packet``, ``msg``, ``_global``) — mirroring the three function
    arguments in the paper's Figure 7.
    """

    name: str
    lifetime: Lifetime
    fields: Tuple[Field, ...]

    def __post_init__(self) -> None:
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise SchemaError(
                    f"schema {self.name!r}: duplicate field {f.name!r}")
            seen.add(f.name)
        if self.lifetime is Lifetime.PACKET:
            for f in self.fields:
                if f.is_array:
                    raise SchemaError(
                        f"schema {self.name!r}: packet-scoped field "
                        f"{f.name!r} cannot be an array")

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"schema {self.name!r} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def writable_fields(self) -> Tuple[Field, ...]:
        return tuple(f for f in self.fields
                     if f.access is AccessLevel.READ_WRITE)


def schema(name: str, lifetime: Lifetime,
           fields: Sequence[Field]) -> Schema:
    """Convenience constructor mirroring the paper's annotated types."""
    return Schema(name=name, lifetime=lifetime, fields=tuple(fields))


#: The canonical packet schema used by the Eden enclave.  The header-map
#: entries mirror Figure 8 of the paper (e.g. ``size`` maps to the IPv4
#: TotalLength field, ``priority`` to the 802.1q priority code point).
DEFAULT_PACKET_SCHEMA = schema(
    "Packet", Lifetime.PACKET, [
        Field("size", AccessLevel.READ_ONLY,
              header_map={"ipv4": "total_length",
                          "ipv6": "payload_length"}),
        # Header fields are writable: "It can modify the packet
        # variable, thus allowing the function to change header
        # fields" (Section 3.4.2) — NAT-style functions depend on it.
        Field("src_ip", AccessLevel.READ_WRITE,
              header_map={"ipv4": "src"}),
        Field("dst_ip", AccessLevel.READ_WRITE,
              header_map={"ipv4": "dst"}),
        Field("src_port", AccessLevel.READ_WRITE,
              header_map={"tcp": "src_port"}),
        Field("dst_port", AccessLevel.READ_WRITE,
              header_map={"tcp": "dst_port"}),
        Field("proto", AccessLevel.READ_ONLY,
              header_map={"ipv4": "protocol"}),
        Field("priority", AccessLevel.READ_WRITE,
              header_map={"802.1q": "pcp"}),
        Field("path_id", AccessLevel.READ_WRITE,
              header_map={"802.1q": "vlan_id"}),
        Field("drop", AccessLevel.READ_WRITE),
        Field("to_controller", AccessLevel.READ_WRITE),
        Field("queue_id", AccessLevel.READ_WRITE),
        Field("charge", AccessLevel.READ_WRITE),
        Field("ecn", AccessLevel.READ_WRITE,
              header_map={"ipv4": "ecn"}),
        Field("tenant", AccessLevel.READ_ONLY),
    ])

"""Closure-threaded fast dispatch for Eden bytecode.

The tree-walk loop in :mod:`repro.lang.interpreter` re-decodes every
instruction through a long ``Op`` comparison chain.  This module
pre-compiles a :class:`~repro.lang.bytecode.Program` into one Python
closure per instruction: each closure has its operands, jump targets
and fault messages resolved at compile time and returns the next pc, so
the dispatch loop is just ``pc = handlers[pc](ctx)``.

On top of the per-instruction closures, a fusion pass replaces the
dominant instruction *pairs/triples* observed in the paper's Fig 2/3/4/7
programs with single "superinstructions":

* ``push ; binop``          (e.g. ``CONST 4; MUL`` in PIAS's search loop)
* ``push ; cmp ; branch``   (e.g. ``ALEN; CGE; JZ`` loop headers)
* ``cmp ; branch``
* ``push ; push``
* ``push ; STORE`` / ``push ; PUTF`` (writable fields only)
* ``ADD ; HLOAD``           (array indexing)

Fusion never crosses a jump target, and the interior instructions of a
fused window keep their unfused handlers, so a jump *into* the middle
of a window still executes correctly with no pc remapping.

Semantics are kept bit-for-bit identical to the tree walk — same
results, same :class:`InterpreterFault` reasons, same ``ExecStats``
(superinstructions count their constituent ops) — and
``tests/lang/test_differential.py`` enforces that over the functions
library and hundreds of fuzzed programs.  The one knowing divergence:
jumps to negative targets (rejected by the verifier) fault here as
"fell off end of code" instead of wrapping around Python-style.

Compiled handler lists are cached on the ``Program`` instance (an
``object.__setattr__`` side-table on the frozen dataclass), so the
enclave pays compilation once per installed function, not per packet.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .bytecode import (INT_MASK, INT_MAX, Instr, Op, Program, wrap64)
from .interpreter import ExecResult, ExecStats, InterpreterFault

_CARRY = 1 << 64
#: Sentinel budget for "no budget": never exceeded by a real program.
_NO_BUDGET = 1 << 62

Handler = Callable[["_Ctx"], int]


class _Ctx:
    """Mutable per-invocation state shared by every handler closure."""

    __slots__ = (
        "stack", "locals", "fields", "heap", "bases", "lengths",
        "wranges", "ops", "budget", "outer", "max_seen", "stack_limit",
        "depth", "call_limit", "max_depth", "rng", "clock",
        "clock_value", "halted", "ret", "name",
    )


def _budget_fault(ctx: "_Ctx", pc: int) -> None:
    raise InterpreterFault(f"op budget of {ctx.budget} exceeded",
                           ctx.name, pc)


def _stack_fault(ctx: "_Ctx", depth: int, pc: int) -> None:
    raise InterpreterFault(
        f"operand stack of {depth} words exceeds limit "
        f"{ctx.stack_limit}", ctx.name, pc)


def _run_frame(ctx: "_Ctx", handlers: Sequence[Handler]) -> int:
    """Dispatch loop for one frame; returns the frame's result value."""
    pc = 0
    try:
        while pc >= 0:
            pc = handlers[pc](ctx)
    except IndexError:
        raise InterpreterFault("operand stack underflow", ctx.name,
                               pc) from None
    return ctx.ret


# -- exec-generated handler factories -----------------------------------
#
# The hot families (pushes, binops, compares, and their fusions) are
# generated from source templates so each closure body is straight-line
# Python with the 64-bit wraparound inlined as mask arithmetic — no
# wrap64() call, no Op comparisons, no attribute lookups beyond ctx.

_ENV = {
    "InterpreterFault": InterpreterFault,
    "_budget_fault": _budget_fault,
    "_stack_fault": _stack_fault,
}


def _def_factory(fname: str, params: Sequence[str],
                 body: Sequence[str], n_ops: int) -> Callable:
    lines = [f"def {fname}({', '.join(params)}):",
             "    def h(ctx):",
             f"        ctx.ops += {n_ops}",
             "        if ctx.ops > ctx.budget:",
             "            _budget_fault(ctx, pc)",
             "        s = ctx.stack"]
    lines += ["        " + ln for ln in body]
    lines.append("    return h")
    ns = dict(_ENV)
    exec("\n".join(lines), ns)  # noqa: S102 - static templates only
    return ns[fname]


def _wrap_lines(expr: str) -> List[str]:
    """res = wrap64(expr), inlined."""
    return [f"v = ({expr}) & {INT_MASK}",
            f"res = v - {_CARRY} if v > {INT_MAX} else v"]


def _depth_lines(extra: int, fault_pc: str) -> List[str]:
    """The tree-walk post-push depth bookkeeping, at peak len(s)+extra."""
    return [f"d = ctx.outer + len(s) + {extra}",
            "if d > ctx.max_seen:",
            "    ctx.max_seen = d",
            "    if d > ctx.stack_limit:",
            f"        _stack_fault(ctx, d, {fault_pc})"]


#: Push-family source expressions; ``{v}`` is the closure-arg slot.
_PUSH_EXPR = {
    Op.CONST: "{v}",
    Op.LOAD: "ctx.locals[{v}]",
    Op.GETF: "ctx.fields[{v}]",
    Op.ABASE: "ctx.bases[{v}]",
    Op.ALEN: "ctx.lengths[{v}]",
}

_BINOP_SET = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.BAND, Op.BOR,
              Op.BXOR, Op.SHL, Op.SHR)

_CMP_SYM = {
    Op.CEQ: "==", Op.CNE: "!=", Op.CLT: "<",
    Op.CLE: "<=", Op.CGT: ">", Op.CGE: ">=",
}

_JUMP_OPS = (Op.JMP, Op.JZ, Op.JNZ)


def _binop_lines(op: Op, lhs: str, rhs: str, pc_expr: str) -> List[str]:
    """Lines computing ``res`` = lhs <op> rhs with tree-walk faults.

    ``rhs`` must be side-effect free (a name or an index read); it is
    evaluated before ``lhs`` is touched, matching the tree walk's
    pop-rhs-first order.
    """
    if op is Op.ADD:
        return _wrap_lines(f"{lhs} + {rhs}")
    if op is Op.SUB:
        return _wrap_lines(f"{lhs} - {rhs}")
    if op is Op.MUL:
        return _wrap_lines(f"{lhs} * {rhs}")
    if op is Op.BAND:
        return [f"res = {lhs} & {rhs}"]
    if op is Op.BOR:
        return [f"res = {lhs} | {rhs}"]
    if op is Op.BXOR:
        return [f"res = {lhs} ^ {rhs}"]
    if op is Op.DIV:
        return [f"r0 = {rhs}",
                "if r0 == 0:",
                "    raise InterpreterFault('division by zero', "
                f"name, {pc_expr})"] + _wrap_lines(f"{lhs} // r0")
    if op is Op.MOD:
        return [f"r0 = {rhs}",
                "if r0 == 0:",
                "    raise InterpreterFault('modulo by zero', "
                f"name, {pc_expr})",
                f"res = {lhs} % r0"]
    if op is Op.SHL:
        return [f"r0 = {rhs}",
                "if not 0 <= r0 < 64:",
                "    raise InterpreterFault("
                "f'shift amount {r0} out of range', "
                f"name, {pc_expr})"] + _wrap_lines(f"{lhs} << r0")
    if op is Op.SHR:
        return [f"r0 = {rhs}",
                "if not 0 <= r0 < 64:",
                "    raise InterpreterFault("
                "f'shift amount {r0} out of range', "
                f"name, {pc_expr})",
                f"res = {lhs} >> r0"]
    raise AssertionError(op)


# Plain pushes: value expr + the tree walk's post-push depth check.
_F_PUSH = {}
for _op, _fmt in _PUSH_EXPR.items():
    _F_PUSH[_op] = _def_factory(
        f"_push_{_op.name.lower()}", ("pc", "npc", "a", "name"),
        [f"s.append({_fmt.format(v='a')})"]
        + _depth_lines(0, "npc") + ["return npc"], 1)

# Plain binops (rhs popped first, exactly like the tree walk).
_F_BINOP = {}
for _op in _BINOP_SET:
    _F_BINOP[_op] = _def_factory(
        f"_binop_{_op.name.lower()}", ("pc", "npc", "name"),
        ["r0 = s.pop()"]
        + _binop_lines(_op, "s[-1]", "r0", "pc")
        + ["s[-1] = res", "return npc"], 1)

# Plain compares.
_F_CMP = {}
for _op, _sym in _CMP_SYM.items():
    _F_CMP[_op] = _def_factory(
        f"_cmp_{_op.name.lower()}", ("pc", "npc", "name"),
        ["r0 = s.pop()",
         f"s[-1] = 1 if s[-1] {_sym} r0 else 0",
         "return npc"], 1)

# Fused push ; binop.
_F_PUSH_BINOP = {}
for _pop in _PUSH_EXPR:
    for _bop in _BINOP_SET:
        _F_PUSH_BINOP[(_pop, _bop)] = _def_factory(
            f"_f_{_pop.name.lower()}_{_bop.name.lower()}",
            ("pc", "npc", "a", "name"),
            _depth_lines(1, "pc + 1")
            + _binop_lines(_bop, "s[-1]",
                           _PUSH_EXPR[_pop].format(v="a"), "pc + 1")
            + ["s[-1] = res", "return npc"], 2)

# Fused cmp ; branch.
_F_CMP_BRANCH = {}
for _cop, _sym in _CMP_SYM.items():
    for _br in (Op.JZ, Op.JNZ):
        _taken, _fall = ("t", "npc") if _br is Op.JNZ else ("npc", "t")
        _F_CMP_BRANCH[(_cop, _br)] = _def_factory(
            f"_f_{_cop.name.lower()}_{_br.name.lower()}",
            ("pc", "t", "npc", "name"),
            ["r0 = s.pop()",
             f"return {_taken} if s.pop() {_sym} r0 else {_fall}"], 2)

# Fused push ; cmp ; branch (the pushed value is the compare rhs).
_F_PUSH_CMP_BRANCH = {}
for _pop in _PUSH_EXPR:
    for _cop, _sym in _CMP_SYM.items():
        for _br in (Op.JZ, Op.JNZ):
            _taken, _fall = (("t", "npc") if _br is Op.JNZ
                             else ("npc", "t"))
            _F_PUSH_CMP_BRANCH[(_pop, _cop, _br)] = _def_factory(
                f"_f_{_pop.name.lower()}_{_cop.name.lower()}"
                f"_{_br.name.lower()}",
                ("pc", "t", "npc", "a", "name"),
                _depth_lines(1, "pc + 1")
                + [f"return {_taken} if s.pop() {_sym} "
                   f"({_PUSH_EXPR[_pop].format(v='a')}) else {_fall}"],
                3)

# Fused push ; push (both depth checks kept for exact fault parity).
_F_PUSH_PUSH = {}
for _p1 in _PUSH_EXPR:
    for _p2 in _PUSH_EXPR:
        _F_PUSH_PUSH[(_p1, _p2)] = _def_factory(
            f"_f_{_p1.name.lower()}_{_p2.name.lower()}",
            ("pc", "npc", "a", "b", "name"),
            [f"s.append({_PUSH_EXPR[_p1].format(v='a')})"]
            + _depth_lines(0, "pc + 1")
            + [f"s.append({_PUSH_EXPR[_p2].format(v='b')})"]
            + _depth_lines(0, "pc + 2") + ["return npc"], 2)

# Fused push ; STORE.
_F_PUSH_STORE = {}
for _pop in _PUSH_EXPR:
    _F_PUSH_STORE[_pop] = _def_factory(
        f"_f_{_pop.name.lower()}_store",
        ("pc", "npc", "a", "b", "name"),
        _depth_lines(1, "pc + 1")
        + [f"ctx.locals[b] = {_PUSH_EXPR[_pop].format(v='a')}",
           "return npc"], 2)

# Fused push ; PUTF (compile-time verified writable).
_F_PUSH_PUTF = {}
for _pop in _PUSH_EXPR:
    _F_PUSH_PUTF[_pop] = _def_factory(
        f"_f_{_pop.name.lower()}_putf",
        ("pc", "npc", "a", "b", "name"),
        _depth_lines(1, "pc + 1")
        + [f"ctx.fields[b] = {_PUSH_EXPR[_pop].format(v='a')}",
           "return npc"], 2)

# Fused ADD ; HLOAD (array element read: base + index, then load).
_F_ADD_HLOAD = _def_factory(
    "_f_add_hload", ("pc", "npc", "name"),
    ["r0 = s.pop()",
     f"v = (s[-1] + r0) & {INT_MASK}",
     f"addr = v - {_CARRY} if v > {INT_MAX} else v",
     "h0 = ctx.heap",
     "if not 0 <= addr < len(h0):",
     "    raise InterpreterFault("
     "f'heap read at {addr} out of bounds "
     "(heap has {len(h0)} words)', name, pc + 1)",
     "s[-1] = h0[addr]",
     "return npc"], 2)


# -- hand-written factories for the cold ops ----------------------------

def _f_store(pc, npc, a, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        ctx.locals[a] = ctx.stack.pop()
        return npc
    return h


def _f_pop(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        ctx.stack.pop()
        return npc
    return h


def _f_dup(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        s.append(s[-1])
        d = ctx.outer + len(s)
        if d > ctx.max_seen:
            ctx.max_seen = d
            if d > ctx.stack_limit:
                _stack_fault(ctx, d, npc)
        return npc
    return h


def _f_swap(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        s[-1], s[-2] = s[-2], s[-1]
        return npc
    return h


def _f_neg(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        v = (-s[-1]) & INT_MASK
        s[-1] = v - _CARRY if v > INT_MAX else v
        return npc
    return h


def _f_bnot(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        v = (~s[-1]) & INT_MASK
        s[-1] = v - _CARRY if v > INT_MAX else v
        return npc
    return h


def _f_notl(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        s[-1] = 1 if s[-1] == 0 else 0
        return npc
    return h


def _f_jmp(pc, t, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        return t
    return h


def _f_jz(pc, t, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        return t if ctx.stack.pop() == 0 else npc
    return h


def _f_jnz(pc, t, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        return t if ctx.stack.pop() != 0 else npc
    return h


def _f_putf(pc, npc, a, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        ctx.fields[a] = ctx.stack.pop()
        return npc
    return h


def _f_putf_readonly(pc, name, scope, fname):
    reason = f"write to read-only field {scope}.{fname}"

    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        raise InterpreterFault(reason, name, pc)
    return h


def _f_hload(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        addr = s.pop()
        h0 = ctx.heap
        if not 0 <= addr < len(h0):
            raise InterpreterFault(
                f"heap read at {addr} out of bounds "
                f"(heap has {len(h0)} words)", name, pc)
        s.append(h0[addr])
        return npc
    return h


def _f_hstore(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        addr = s.pop()
        value = s.pop()
        for lo, hi in ctx.wranges:
            if lo <= addr < hi:
                ctx.heap[addr] = value
                return npc
        raise InterpreterFault(
            f"heap write at {addr} outside writable regions",
            name, pc)
    return h


def _f_rand(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        bound = s.pop()
        if bound <= 0:
            raise InterpreterFault(
                f"rand bound {bound} must be positive", name, pc)
        s.append(ctx.rng.randrange(bound))
        return npc
    return h


def _f_clock(pc, npc, name):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        v = ctx.clock_value
        if v is None:
            v = ctx.clock_value = wrap64(ctx.clock())
        s = ctx.stack
        s.append(v)
        d = ctx.outer + len(s)
        if d > ctx.max_seen:
            ctx.max_seen = d
            if d > ctx.stack_limit:
                _stack_fault(ctx, d, npc)
        return npc
    return h


def _f_call(pc, npc, name, lists, func_index, n_args, pad):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        if ctx.depth >= ctx.call_limit:
            raise InterpreterFault(
                f"call depth exceeds {ctx.call_limit}", name, pc)
        s = ctx.stack
        if len(s) < n_args:
            raise InterpreterFault("operand stack underflow at call",
                                   name, pc)
        cut = len(s) - n_args
        new_locals = s[cut:] + pad
        del s[cut:]
        ctx.outer += len(s)
        saved_locals = ctx.locals
        ctx.stack = []
        ctx.locals = new_locals
        ctx.depth += 1
        if ctx.depth > ctx.max_depth:
            ctx.max_depth = ctx.depth
        ret = _run_frame(ctx, lists[func_index])
        ctx.depth -= 1
        ctx.stack = s
        ctx.locals = saved_locals
        if ctx.halted:
            return -1
        ctx.outer -= len(s)
        # The tree walk's RET path `continue`s straight to the next
        # instruction, so no depth check runs on the pushed result.
        s.append(ret)
        return npc
    return h


def _f_ret(pc, name, halt):
    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        s = ctx.stack
        ctx.ret = s.pop() if s else 0
        if halt:
            ctx.halted = True
        return -1
    return h


def _f_raiser(pc, name, reason, count_op=True):
    def h(ctx):
        if count_op:
            ctx.ops += 1
            if ctx.ops > ctx.budget:
                _budget_fault(ctx, pc)
        raise InterpreterFault(reason, name, pc)
    return h


def _f_fell_off(name, end_pc):
    def h(ctx):
        raise InterpreterFault("fell off end of code", name, end_pc)
    return h


def _f_unknown(pc, name, op):
    reason = f"unknown opcode {op!r}"

    def h(ctx):
        ctx.ops += 1
        if ctx.ops > ctx.budget:
            _budget_fault(ctx, pc)
        raise InterpreterFault(reason, name, pc)
    return h


# -- compilation --------------------------------------------------------

def _imm(instr: Instr) -> int:
    """Compile-time operand: CONST values are pre-wrapped."""
    if instr.op is Op.CONST:
        return wrap64(instr.arg)
    return instr.arg


def _clamp_target(target: int, end: int) -> int:
    """Out-of-range jump targets land on the fell-off-end sentinel."""
    if 0 <= target <= end:
        return target
    return end


def _base_handler(program: Program, lists: List[List[Handler]],
                  code: Sequence[Instr], pc: int) -> Handler:
    name = program.name
    instr = code[pc]
    op = instr.op
    npc = pc + 1
    end = len(code)
    if op in _PUSH_EXPR:
        return _F_PUSH[op](pc, npc, _imm(instr), name)
    if op in _BINOP_SET:
        return _F_BINOP[op](pc, npc, name)
    if op in _CMP_SYM:
        return _F_CMP[op](pc, npc, name)
    if op is Op.STORE:
        return _f_store(pc, npc, instr.arg, name)
    if op is Op.POP:
        return _f_pop(pc, npc, name)
    if op is Op.DUP:
        return _f_dup(pc, npc, name)
    if op is Op.SWAP:
        return _f_swap(pc, npc, name)
    if op is Op.NEG:
        return _f_neg(pc, npc, name)
    if op is Op.BNOT:
        return _f_bnot(pc, npc, name)
    if op is Op.NOTL:
        return _f_notl(pc, npc, name)
    if op is Op.JMP:
        return _f_jmp(pc, _clamp_target(instr.arg, end), name)
    if op is Op.JZ:
        return _f_jz(pc, _clamp_target(instr.arg, end), npc, name)
    if op is Op.JNZ:
        return _f_jnz(pc, _clamp_target(instr.arg, end), npc, name)
    if op is Op.PUTF:
        try:
            ref = program.field_table[instr.arg]
        except IndexError:
            # The tree walk hits IndexError at run time and reports an
            # operand-stack underflow; reproduce that.
            return _f_raiser(pc, name, "operand stack underflow")
        if not ref.writable:
            return _f_putf_readonly(pc, name, ref.scope, ref.name)
        return _f_putf(pc, npc, instr.arg, name)
    if op is Op.HLOAD:
        return _f_hload(pc, npc, name)
    if op is Op.HSTORE:
        return _f_hstore(pc, npc, name)
    if op is Op.CALL:
        try:
            callee = program.functions[instr.arg]
        except IndexError:
            return _f_raiser(pc, name, "operand stack underflow")
        pad = [0] * max(0, callee.n_locals - callee.n_args)
        return _f_call(pc, npc, name, lists, instr.arg,
                       callee.n_args, pad)
    if op is Op.RET:
        return _f_ret(pc, name, halt=False)
    if op is Op.HALT:
        return _f_ret(pc, name, halt=True)
    if op is Op.RAND:
        return _f_rand(pc, npc, name)
    if op is Op.CLOCK:
        return _f_clock(pc, npc, name)
    return _f_unknown(pc, name, op)


def _writable_putf_slot(program: Program, instr: Instr) -> Optional[int]:
    try:
        ref = program.field_table[instr.arg]
    except IndexError:
        return None
    return instr.arg if ref.writable else None


def _fuse(program: Program, code: Sequence[Instr], pc: int,
          targets: frozenset) -> Optional[Handler]:
    """A superinstruction handler for the window starting at pc, if any."""
    name = program.name
    end = len(code)
    i0 = code[pc]
    op0 = i0.op
    # push ; cmp ; branch
    if (op0 in _PUSH_EXPR and pc + 2 < end
            and pc + 1 not in targets and pc + 2 not in targets
            and code[pc + 1].op in _CMP_SYM
            and code[pc + 2].op in (Op.JZ, Op.JNZ)):
        br = code[pc + 2]
        fact = _F_PUSH_CMP_BRANCH[(op0, code[pc + 1].op, br.op)]
        return fact(pc, _clamp_target(br.arg, end), pc + 3,
                    _imm(i0), name)
    if pc + 1 >= end or (pc + 1) in targets:
        return None
    i1 = code[pc + 1]
    op1 = i1.op
    if op0 in _PUSH_EXPR:
        if op1 in _BINOP_SET:
            return _F_PUSH_BINOP[(op0, op1)](pc, pc + 2, _imm(i0), name)
        if op1 is Op.STORE:
            return _F_PUSH_STORE[op0](pc, pc + 2, _imm(i0), i1.arg,
                                      name)
        if op1 is Op.PUTF:
            slot = _writable_putf_slot(program, i1)
            if slot is not None:
                return _F_PUSH_PUTF[op0](pc, pc + 2, _imm(i0), slot,
                                         name)
            return None
        if op1 in _PUSH_EXPR:
            return _F_PUSH_PUSH[(op0, op1)](pc, pc + 2, _imm(i0),
                                            _imm(i1), name)
        return None
    if op0 in _CMP_SYM and op1 in (Op.JZ, Op.JNZ):
        return _F_CMP_BRANCH[(op0, op1)](
            pc, _clamp_target(i1.arg, end), pc + 2, name)
    if op0 is Op.ADD and op1 is Op.HLOAD:
        return _F_ADD_HLOAD(pc, pc + 2, name)
    return None


def compile_program(program: Program) -> List[List[Handler]]:
    """Compile every function to a handler list (len(code)+1 entries).

    Entry ``len(code)`` is the fell-off-end sentinel so running past
    the last instruction faults exactly like the tree walk.
    """
    lists: List[List[Handler]] = [
        [None] * (len(fn.code) + 1)  # type: ignore[list-item]
        for fn in program.functions
    ]
    for fi, fn in enumerate(program.functions):
        code = fn.code
        handlers = lists[fi]
        targets = frozenset(
            i.arg for i in code if i.op in _JUMP_OPS)
        for pc in range(len(code)):
            handlers[pc] = _base_handler(program, lists, code, pc)
        handlers[len(code)] = _f_fell_off(program.name, len(code))
        for pc in range(len(code)):
            fused = _fuse(program, code, pc, targets)
            if fused is not None:
                handlers[pc] = fused
    return lists


def fast_code(program: Program,
              telemetry=None) -> List[List[Handler]]:
    """The compiled handler lists, cached on the Program instance.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is consulted
    only on a cache miss — compile events are rare and the counter
    shows when a workload is recompiling instead of reusing programs.
    """
    lists = getattr(program, "_fast_lists", None)
    if lists is None:
        lists = compile_program(program)
        object.__setattr__(program, "_fast_lists", lists)
        if telemetry is not None:
            telemetry.registry.counter(
                "fastdispatch_compiles_total").inc()
            telemetry.registry.histogram(
                "fastdispatch_handlers_per_program").observe(
                sum(len(h) for h in lists))
    return lists


def execute_fast(interp, program: Program, fields: Sequence[int],
                 arrays: Sequence[Sequence[int]],
                 args: Sequence[int] = ()) -> ExecResult:
    """Fast-dispatch twin of ``Interpreter.execute_tree``."""
    from .interpreter import _copy_in, _finish, _make_locals

    field_file, heap, bases, lengths, wranges = _copy_in(
        program, fields, arrays, interp.max_heap_words)
    lists = fast_code(program, getattr(interp, "telemetry", None))

    ctx = _Ctx()
    ctx.stack = []
    ctx.locals = _make_locals(program.entry.n_locals, args)
    ctx.fields = field_file
    ctx.heap = heap
    ctx.bases = bases
    ctx.lengths = lengths
    ctx.wranges = wranges
    ctx.ops = 0
    ctx.budget = (interp.op_budget if interp.op_budget is not None
                  else _NO_BUDGET)
    ctx.outer = 0
    ctx.max_seen = 0
    ctx.stack_limit = interp.max_operand_stack
    ctx.depth = 1
    ctx.call_limit = interp.max_call_depth
    ctx.max_depth = 1
    ctx.rng = interp.rng
    ctx.clock = interp.clock
    ctx.clock_value = None
    ctx.halted = False
    ctx.ret = 0
    ctx.name = program.name

    result = _run_frame(ctx, lists[0])
    stats = ExecStats(ops_executed=ctx.ops,
                      max_operand_stack=ctx.max_seen,
                      max_call_depth=ctx.max_depth,
                      heap_words=len(heap))
    return _finish(program, result, field_file, heap, bases, lengths,
                   stats)


class BatchRunner:
    """Amortized fast-dispatch executor for a run of invocations.

    ``execute_fast`` pays a fixed per-call cost — the handler-list
    cache probe and ~20 context attribute stores — that dominates
    small programs.  A :class:`BatchRunner` is built once per batch
    group (one ``(interpreter, program)`` pair) and hoists everything
    invariant across invocations: the compiled handler lists, the
    interpreter limits, and the :class:`_Ctx` instance itself, whose
    per-invocation fields are reset in place.

    Each :meth:`run` is bit-for-bit identical to one ``execute_fast``
    call — same results, same :class:`ExecStats`, same
    :class:`InterpreterFault` reasons — which the batch differential
    harness (``tests/lang/test_differential.py``) enforces.
    """

    __slots__ = ("program", "lists", "ctx", "n_locals", "n_fields",
                 "no_arrays", "max_heap_words", "_copy_in", "_finish",
                 "_make_locals")

    def __init__(self, interp, program: Program) -> None:
        from .interpreter import _copy_in, _finish, _make_locals

        self.program = program
        self.lists = fast_code(program,
                               getattr(interp, "telemetry", None))
        self.n_locals = program.entry.n_locals
        self.n_fields = len(program.field_table)
        # Array-free programs (most header-rewriting actions) skip the
        # heap copy-in/out entirely; behavior is unchanged — the same
        # faults fire on malformed input.
        self.no_arrays = not program.array_table
        self.max_heap_words = interp.max_heap_words
        self._copy_in = _copy_in
        self._finish = _finish
        self._make_locals = _make_locals
        ctx = _Ctx()
        # Invariant across invocations of this group.
        ctx.budget = (interp.op_budget
                      if interp.op_budget is not None else _NO_BUDGET)
        ctx.stack_limit = interp.max_operand_stack
        ctx.call_limit = interp.max_call_depth
        ctx.rng = interp.rng
        ctx.clock = interp.clock
        ctx.name = program.name
        self.ctx = ctx

    def run(self, fields: Sequence[int],
            arrays: Sequence[Sequence[int]],
            args: Sequence[int] = ()) -> ExecResult:
        """One invocation; raises :class:`InterpreterFault` like
        ``execute_fast``."""
        if self.no_arrays and not args:
            # Inlined copy-in/out for the array-free, argument-free
            # case: same validation, same faults, no heap machinery.
            if len(fields) != self.n_fields:
                raise InterpreterFault(
                    f"expected {self.n_fields} fields, got "
                    f"{len(fields)}", self.program.name)
            if len(arrays):
                raise InterpreterFault(
                    f"expected 0 arrays, got {len(arrays)}",
                    self.program.name)
            field_file = [wrap64(v) for v in fields]
            ctx = self.ctx
            ctx.stack = []
            ctx.locals = [0] * self.n_locals
            ctx.fields = field_file
            ctx.heap = []
            ctx.bases = ()
            ctx.lengths = ()
            ctx.wranges = ()
            ctx.ops = 0
            ctx.outer = 0
            ctx.max_seen = 0
            ctx.depth = 1
            ctx.max_depth = 1
            ctx.clock_value = None
            ctx.halted = False
            ctx.ret = 0
            result = _run_frame(ctx, self.lists[0])
            return ExecResult(
                value=result, fields=field_file, arrays=[],
                stats=ExecStats(ops_executed=ctx.ops,
                                max_operand_stack=ctx.max_seen,
                                max_call_depth=ctx.max_depth,
                                heap_words=0))
        field_file, heap, bases, lengths, wranges = self._copy_in(
            self.program, fields, arrays, self.max_heap_words)
        ctx = self.ctx
        ctx.stack = []
        ctx.locals = self._make_locals(self.n_locals, args)
        ctx.fields = field_file
        ctx.heap = heap
        ctx.bases = bases
        ctx.lengths = lengths
        ctx.wranges = wranges
        ctx.ops = 0
        ctx.outer = 0
        ctx.max_seen = 0
        ctx.depth = 1
        ctx.max_depth = 1
        ctx.clock_value = None
        ctx.halted = False
        ctx.ret = 0
        result = _run_frame(ctx, self.lists[0])
        stats = ExecStats(ops_executed=ctx.ops,
                          max_operand_stack=ctx.max_seen,
                          max_call_depth=ctx.max_depth,
                          heap_words=len(heap))
        return self._finish(self.program, result, field_file, heap,
                            bases, lengths, stats)


def execute_fast_batch(interp, program: Program,
                       snapshots: Sequence[Tuple[Sequence[int],
                                                 Sequence[Sequence[int]]]],
                       args: Sequence[int] = ()) -> List[object]:
    """Run ``program`` over many ``(fields, arrays)`` snapshots.

    Faults are isolated per invocation (the enclave forwards a faulted
    packet unmodified and keeps going): the returned list holds, per
    snapshot and in order, either an :class:`ExecResult` or the
    :class:`InterpreterFault` the invocation raised.
    """
    runner = BatchRunner(interp, program)
    out: List[object] = []
    run = runner.run
    for fields, arrays in snapshots:
        try:
            out.append(run(fields, arrays, args))
        except InterpreterFault as fault:
            out.append(fault)
    return out

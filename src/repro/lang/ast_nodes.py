"""Typed intermediate AST for Eden action functions.

The DSL frontend (:mod:`repro.lang.dsl`) lowers a restricted Python
function into these nodes after resolving every name against the three
state schemas (packet / message / global).  Both backends — the bytecode
compiler and the native code generator — consume this representation, so
they are guaranteed to implement the same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class Node:
    """Base class for all typed AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal (booleans are lowered to 1/0)."""
    value: int


@dataclass(frozen=True)
class LocalRef(Expr):
    """Read of a local variable or parameter, by slot number."""
    name: str
    slot: int


@dataclass(frozen=True)
class StateRef(Expr):
    """Read of a scalar state field, e.g. ``packet.size``.

    ``index`` is the position in the program's field table.
    """
    scope: str
    name: str
    index: int


@dataclass(frozen=True)
class ArrayIndex(Expr):
    """Read of an array element: ``arr[i]`` or ``arr[i].member``.

    ``array_index`` is the position in the program's array table;
    ``offset`` is the record-member offset (0 for flat arrays).
    """
    scope: str
    name: str
    array_index: int
    stride: int
    offset: int
    index: Expr


@dataclass(frozen=True)
class ArrayLen(Expr):
    """``len(arr)`` on an array state field."""
    scope: str
    name: str
    array_index: int


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic/bitwise operation.

    ``op`` is one of ``+ - * // % & | ^ << >>``.
    """
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation; ``op`` is one of ``- ~ not``."""
    op: str
    operand: Expr


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison producing 1 or 0; ``op`` in ``== != < <= > >=``."""
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """Short-circuit ``and``/``or`` over two or more operands."""
    op: str  # "and" | "or"
    operands: Tuple[Expr, ...]


@dataclass(frozen=True)
class IfExp(Expr):
    """Conditional expression ``a if cond else b``."""
    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Call of a nested helper function defined inside the action
    function.  ``func_index`` is the callee's position in the program's
    function list."""
    name: str
    func_index: int
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Builtin(Expr):
    """Call of an interpreter builtin: ``rand(bound)`` or ``clock()``."""
    name: str  # "rand" | "clock"
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ()


@dataclass(frozen=True)
class AssignLocal(Stmt):
    name: str
    slot: int
    value: Expr


@dataclass(frozen=True)
class AssignState(Stmt):
    """Write to a scalar state field, e.g. ``packet.priority = x``."""
    scope: str
    name: str
    index: int
    value: Expr


@dataclass(frozen=True)
class AssignArray(Stmt):
    """Write to an array element: ``arr[i] = x`` / ``arr[i].m = x``."""
    scope: str
    name: str
    array_index: int
    stride: int
    offset: int
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...]


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Return(Stmt):
    """Return from the current function.

    A ``return`` with no value returns 0; the entry function's return
    value is exposed to the runtime as the program result.
    """
    value: Optional[Expr]


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (result discarded)."""
    value: Expr


@dataclass(frozen=True)
class Pass(Stmt):
    pass


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FunctionDef(Node):
    """One function: the action-function entry point or a nested helper.

    ``params`` are the names of value parameters (state parameters such
    as ``packet`` never appear — they are resolved to StateRefs during
    lowering).  ``n_locals`` counts parameters plus local variables.
    """
    name: str
    params: Tuple[str, ...]
    n_locals: int
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class ProgramAST(Node):
    """Typed AST of a whole action function.

    ``functions[0]`` is the entry point; the rest are nested helpers in
    definition order.  The field/array tables fix the meaning of
    ``StateRef.index`` / ``ArrayIndex.array_index`` for the backends.
    """
    name: str
    functions: Tuple[FunctionDef, ...]
    field_table: tuple    # Tuple[bytecode.FieldRef, ...]
    array_table: tuple    # Tuple[bytecode.ArrayRef, ...]
    source: str = ""


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth-first."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, Compare):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BoolOp):
        for op in expr.operands:
            yield from walk_expr(op)
    elif isinstance(expr, IfExp):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.orelse)
    elif isinstance(expr, (Call, Builtin)):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ArrayIndex):
        yield from walk_expr(expr.index)


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement in ``stmts``, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.orelse)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)


def expressions_of(stmt: Stmt):
    """Yield the top-level expressions contained in one statement."""
    if isinstance(stmt, AssignLocal):
        yield stmt.value
    elif isinstance(stmt, AssignState):
        yield stmt.value
    elif isinstance(stmt, AssignArray):
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.value

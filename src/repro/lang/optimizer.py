"""Peephole optimization of compiled bytecode.

Section 3.4.4: "In the current version, we perform a number of
optimizations such as recognizing tail recursion and compiling it as a
loop."  Tail recursion lives in the compiler; this module adds the
rest of a classic peephole pipeline, run to a fixpoint:

* **constant folding** — ``CONST a; CONST b; <binop>`` becomes
  ``CONST (a op b)`` (with 64-bit wraparound, and never folding a
  faulting op such as division by zero — the fault must still happen
  at run time);
* **jump threading** — a jump whose target is another unconditional
  jump goes straight to the final destination;
* **jump-to-next elimination** — ``JMP pc+1`` disappears;
* **constant-condition branches** — ``CONST c; JZ/JNZ`` becomes
  either a plain ``JMP`` or nothing;
* **dead-code elimination** — instructions unreachable from the entry
  point are dropped (with jump targets remapped).

Every pass preserves the program's observable semantics; the test
suite checks optimized and unoptimized programs against each other on
random inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from .bytecode import (FunctionCode, Instr, Op, Program, wrap64)

_FOLDABLE_BINOPS: Dict[Op, Callable[[int, int], Optional[int]]] = {
    Op.ADD: lambda a, b: wrap64(a + b),
    Op.SUB: lambda a, b: wrap64(a - b),
    Op.MUL: lambda a, b: wrap64(a * b),
    Op.DIV: lambda a, b: wrap64(a // b) if b != 0 else None,
    Op.MOD: lambda a, b: wrap64(a % b) if b != 0 else None,
    Op.BAND: lambda a, b: wrap64(a & b),
    Op.BOR: lambda a, b: wrap64(a | b),
    Op.BXOR: lambda a, b: wrap64(a ^ b),
    Op.SHL: lambda a, b: wrap64(a << b) if 0 <= b < 64 else None,
    Op.SHR: lambda a, b: wrap64(a >> b) if 0 <= b < 64 else None,
    Op.CEQ: lambda a, b: 1 if a == b else 0,
    Op.CNE: lambda a, b: 1 if a != b else 0,
    Op.CLT: lambda a, b: 1 if a < b else 0,
    Op.CLE: lambda a, b: 1 if a <= b else 0,
    Op.CGT: lambda a, b: 1 if a > b else 0,
    Op.CGE: lambda a, b: 1 if a >= b else 0,
}

_FOLDABLE_UNOPS: Dict[Op, Callable[[int], int]] = {
    Op.NEG: lambda a: wrap64(-a),
    Op.BNOT: lambda a: wrap64(~a),
    Op.NOTL: lambda a: 1 if a == 0 else 0,
}

_JUMPS = (Op.JMP, Op.JZ, Op.JNZ)


def optimize_program(program: Program,
                     max_rounds: int = 8) -> Program:
    """Return an equivalent program with peephole optimizations
    applied to every function."""
    functions = tuple(optimize_function(fn, max_rounds=max_rounds)
                      for fn in program.functions)
    return Program(name=program.name, functions=functions,
                   field_table=program.field_table,
                   array_table=program.array_table,
                   source=program.source)


def optimize_function(fn: FunctionCode,
                      max_rounds: int = 8) -> FunctionCode:
    code = list(fn.code)
    for _ in range(max_rounds):
        changed = False
        changed |= _fold_constants(code)
        changed |= _thread_jumps(code)
        changed |= _fold_constant_branches(code)
        new_code, removed = _eliminate_dead_code(code)
        if removed:
            changed = True
        code = new_code
        if not changed:
            break
    return FunctionCode(name=fn.name, n_args=fn.n_args,
                        n_locals=fn.n_locals, code=tuple(code))


# -- individual passes -------------------------------------------------------
#
# In-place passes replace instructions with NOP-equivalents (CONST 0 +
# POP pairs would change stack traffic, so instead we rewrite windows
# and let dead-code elimination compact), keeping indices stable so
# jump targets stay valid until the final renumbering.

def _jump_targets(code: List[Instr]) -> Set[int]:
    return {i.arg for i in code if i.op in _JUMPS}


def _fold_constants(code: List[Instr]) -> bool:
    """CONST/CONST/binop and CONST/unop windows become one CONST.

    A window is only folded when no jump lands in its middle (a jump
    into the window would observe different stack contents).  One
    fold is applied per scan — with jump targets recomputed between
    scans — repeated to a local fixpoint.
    """
    changed = False
    while _fold_one_constant(code):
        changed = True
    return changed


def _fold_one_constant(code: List[Instr]) -> bool:
    targets = _jump_targets(code)
    for i in range(len(code)):
        # Unary: CONST a; unop
        if (i + 1 < len(code) and code[i].op is Op.CONST
                and code[i + 1].op in _FOLDABLE_UNOPS
                and i + 1 not in targets):
            value = _FOLDABLE_UNOPS[code[i + 1].op](code[i].arg)
            code[i] = Instr(Op.CONST, value)
            del code[i + 1]
            _shift_targets(code, removed_at=i + 1, count=1)
            return True
        # Binary: CONST a; CONST b; binop
        if (i + 2 < len(code) and code[i].op is Op.CONST
                and code[i + 1].op is Op.CONST
                and code[i + 2].op in _FOLDABLE_BINOPS
                and i + 1 not in targets and i + 2 not in targets):
            folder = _FOLDABLE_BINOPS[code[i + 2].op]
            value = folder(code[i].arg, code[i + 1].arg)
            if value is not None:
                code[i] = Instr(Op.CONST, value)
                del code[i + 1:i + 3]
                _shift_targets(code, removed_at=i + 1, count=2)
                return True
    return False


def _shift_targets(code: List[Instr], removed_at: int,
                   count: int) -> None:
    """Adjust jump targets after deleting ``count`` instructions at
    index ``removed_at``."""
    for idx, instr in enumerate(code):
        if instr.op in _JUMPS and instr.arg >= removed_at + count:
            code[idx] = Instr(instr.op, instr.arg - count)
        elif instr.op in _JUMPS and instr.arg > removed_at:
            # A target inside the removed window collapses onto the
            # fold result.
            code[idx] = Instr(instr.op, removed_at)


def _thread_jumps(code: List[Instr]) -> bool:
    """Retarget jumps that land on unconditional JMPs."""
    changed = False
    for idx, instr in enumerate(code):
        if instr.op not in _JUMPS:
            continue
        target = instr.arg
        seen = set()
        while (0 <= target < len(code)
               and code[target].op is Op.JMP
               and target not in seen):
            seen.add(target)
            target = code[target].arg
        if target != instr.arg:
            code[idx] = Instr(instr.op, target)
            changed = True
    return changed


def _fold_constant_branches(code: List[Instr]) -> bool:
    """CONST c; JZ/JNZ collapses to JMP or falls through.

    Both instructions are rewritten in place (the branch becomes
    either ``JMP target`` or ``JMP next``) so indices stay stable;
    dead-code elimination cleans up.
    """
    targets = _jump_targets(code)
    changed = False
    for idx in range(len(code) - 1):
        if code[idx].op is not Op.CONST:
            continue
        branch = code[idx + 1]
        if branch.op not in (Op.JZ, Op.JNZ) or \
                (idx + 1) in targets:
            continue
        value = code[idx].arg
        taken = (value == 0) if branch.op is Op.JZ else (value != 0)
        destination = branch.arg if taken else idx + 2
        code[idx] = Instr(Op.JMP, destination)
        code[idx + 1] = Instr(Op.JMP, destination)
        changed = True
    return changed


def _eliminate_dead_code(code: List[Instr]
                         ) -> Tuple[List[Instr], int]:
    """Drop unreachable instructions, remapping jump targets."""
    n = len(code)
    reachable: Set[int] = set()
    work = [0] if n else []
    while work:
        pc = work.pop()
        if pc in reachable or not 0 <= pc < n:
            continue
        reachable.add(pc)
        op = code[pc].op
        if op is Op.JMP:
            work.append(code[pc].arg)
        elif op in (Op.JZ, Op.JNZ):
            work.append(code[pc].arg)
            work.append(pc + 1)
        elif op in (Op.RET, Op.HALT):
            pass
        else:
            work.append(pc + 1)
    if len(reachable) == n:
        return code, 0
    mapping: Dict[int, int] = {}
    new_code: List[Instr] = []
    for pc in range(n):
        if pc in reachable:
            mapping[pc] = len(new_code)
            new_code.append(code[pc])
    for idx, instr in enumerate(new_code):
        if instr.op in _JUMPS:
            new_code[idx] = Instr(instr.op, mapping[instr.arg])
    return new_code, n - len(new_code)

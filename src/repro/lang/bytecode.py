"""Bytecode ISA for the Eden enclave interpreter.

The interpreter is a stack machine "similar in spirit to the JVM"
(Section 4.1).  Values on the operand stack are 64-bit signed integers;
the paper's language subset has no floating point, objects or exceptions.

Arrays live in a flat integer *heap*, populated by the enclave runtime at
invocation time with a consistent copy of the message/global arrays the
program needs (Section 3.4.4: "more complicated types, such as arrays,
are placed in the program heap ... by copying the values from the flow or
function state").  Bytecode addresses the heap through ``ABASE``/``ALEN``
plus ordinary arithmetic, with every access bounds-checked by ``HLOAD``/
``HSTORE``.

Scalar state variables (packet, message, and global integers) are
accessed through a per-program *field table* built by the compiler:
``GETF``/``PUTF`` carry an index into that table.  Access control is
checked both at compile time and when the interpreter commits writes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

INT_BITS = 64
INT_MASK = (1 << INT_BITS) - 1
INT_MIN = -(1 << (INT_BITS - 1))
INT_MAX = (1 << (INT_BITS - 1)) - 1


def wrap64(value: int) -> int:
    """Wrap a Python int to 64-bit two's-complement semantics."""
    value &= INT_MASK
    if value > INT_MAX:
        value -= 1 << INT_BITS
    return value


class Op(enum.IntEnum):
    """Opcodes of the Eden stack machine."""

    # Constants and locals
    CONST = 1        # arg: value            -> push value
    LOAD = 2         # arg: slot             -> push local[slot]
    STORE = 3        # arg: slot             -> local[slot] = pop

    # Stack manipulation
    POP = 10         # discard top of stack
    DUP = 11         # duplicate top of stack
    SWAP = 12        # swap top two values

    # Arithmetic (binary ops pop rhs then lhs, push result)
    ADD = 20
    SUB = 21
    MUL = 22
    DIV = 23         # truncated toward negative infinity (Python //)
    MOD = 24
    NEG = 25
    BAND = 26
    BOR = 27
    BXOR = 28
    BNOT = 29
    SHL = 30
    SHR = 31

    # Comparisons (push 1 or 0)
    CEQ = 40
    CNE = 41
    CLT = 42
    CLE = 43
    CGT = 44
    CGE = 45
    NOTL = 46        # logical not: push (pop == 0)

    # Control flow
    JMP = 50         # arg: target pc
    JZ = 51          # arg: target pc; jump if pop == 0
    JNZ = 52         # arg: target pc; jump if pop != 0

    # State access
    GETF = 60        # arg: field-table index -> push field value
    PUTF = 61        # arg: field-table index; field = pop
    ABASE = 62       # arg: array-table index -> push heap base address
    ALEN = 63        # arg: array-table index -> push element count
    HLOAD = 64       # pop addr -> push heap[addr]
    HSTORE = 65      # pop addr, pop value -> heap[addr] = value

    # Procedure calls (non-tail recursion; tail calls become JMPs)
    CALL = 70        # arg: function index; operands already on stack
    RET = 71         # return to caller with top of stack as result

    # Builtins (Section 4.1: random numbers, high-frequency clock)
    RAND = 80        # pop bound -> push uniform integer in [0, bound)
    CLOCK = 81       # push current time in nanoseconds

    HALT = 90        # stop; top of stack (if any) is the program result


#: Opcodes that carry an immediate argument.
OPS_WITH_ARG = frozenset({
    Op.CONST, Op.LOAD, Op.STORE, Op.JMP, Op.JZ, Op.JNZ,
    Op.GETF, Op.PUTF, Op.ABASE, Op.ALEN, Op.CALL,
})

#: (pops, pushes) stack effect per opcode; CALL/RET are special-cased in
#: the verifier.
STACK_EFFECT = {
    Op.CONST: (0, 1), Op.LOAD: (0, 1), Op.STORE: (1, 0),
    Op.POP: (1, 0), Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.MOD: (2, 1), Op.NEG: (1, 1), Op.BAND: (2, 1), Op.BOR: (2, 1),
    Op.BXOR: (2, 1), Op.BNOT: (1, 1), Op.SHL: (2, 1), Op.SHR: (2, 1),
    Op.CEQ: (2, 1), Op.CNE: (2, 1), Op.CLT: (2, 1), Op.CLE: (2, 1),
    Op.CGT: (2, 1), Op.CGE: (2, 1), Op.NOTL: (1, 1),
    Op.JMP: (0, 0), Op.JZ: (1, 0), Op.JNZ: (1, 0),
    Op.GETF: (0, 1), Op.PUTF: (1, 0),
    Op.ABASE: (0, 1), Op.ALEN: (0, 1),
    Op.HLOAD: (1, 1), Op.HSTORE: (2, 0),
    Op.RAND: (1, 1), Op.CLOCK: (0, 1),
    Op.HALT: (0, 0), Op.RET: (1, 0),
    # Op.CALL handled specially (depends on callee arity)
}


@dataclass(frozen=True)
class Instr:
    """A single instruction: opcode plus optional immediate argument."""

    op: Op
    arg: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op in OPS_WITH_ARG:
            if self.arg is None:
                raise ValueError(f"{self.op.name} requires an argument")
        elif self.arg is not None:
            raise ValueError(f"{self.op.name} takes no argument")

    def __repr__(self) -> str:
        if self.arg is None:
            return self.op.name
        return f"{self.op.name} {self.arg}"


@dataclass(frozen=True)
class FieldRef:
    """Entry in a program's field table: a scalar state variable.

    ``scope`` is one of ``"packet"``, ``"message"``, ``"global"`` and
    ``writable`` records the declared access level so the interpreter can
    reject PUTFs to read-only state even if a verifier was bypassed.
    """

    scope: str
    name: str
    writable: bool


@dataclass(frozen=True)
class ArrayRef:
    """Entry in a program's array table: an array state variable.

    ``stride`` is the number of heap words per element (>1 for record
    arrays).  ``writable`` marks whether HSTOREs into the array's heap
    region are allowed and whether it is copied back on commit.
    """

    scope: str
    name: str
    stride: int
    writable: bool


@dataclass(frozen=True)
class FunctionCode:
    """Bytecode of one compiled function (entry point or helper)."""

    name: str
    n_args: int
    n_locals: int
    code: Tuple[Instr, ...]

    def __len__(self) -> int:
        return len(self.code)


@dataclass(frozen=True)
class Program:
    """A fully compiled action function.

    ``functions[0]`` is the entry point; further entries are nested
    helper functions reachable through CALL.  The field and array tables
    are shared across all functions of the program.
    """

    name: str
    functions: Tuple[FunctionCode, ...]
    field_table: Tuple[FieldRef, ...]
    array_table: Tuple[ArrayRef, ...]
    source: str = ""

    @property
    def entry(self) -> FunctionCode:
        return self.functions[0]

    def function_index(self, name: str) -> int:
        for i, f in enumerate(self.functions):
            if f.name == name:
                return i
        raise KeyError(name)

    def disassemble(self) -> str:
        """Human-readable listing of all functions in the program."""
        lines: List[str] = [f"program {self.name}"]
        for fi, fn in enumerate(self.functions):
            lines.append(
                f"  fn[{fi}] {fn.name} args={fn.n_args} "
                f"locals={fn.n_locals}")
            for pc, instr in enumerate(fn.code):
                note = ""
                if instr.op in (Op.GETF, Op.PUTF):
                    ref = self.field_table[instr.arg]
                    note = f"    ; {ref.scope}.{ref.name}"
                elif instr.op in (Op.ABASE, Op.ALEN):
                    ref = self.array_table[instr.arg]
                    note = f"    ; {ref.scope}.{ref.name}"
                elif instr.op is Op.CALL:
                    note = f"    ; {self.functions[instr.arg].name}"
                lines.append(f"    {pc:4d}: {instr!r}{note}")
        return "\n".join(lines)


class Assembler:
    """Small helper for emitting bytecode with labelled jumps.

    The compiler uses one assembler per function; labels are resolved to
    instruction indices when :meth:`finish` is called.
    """

    def __init__(self, name: str, n_args: int) -> None:
        self.name = name
        self.n_args = n_args
        self._instrs: List[Tuple[Op, object]] = []
        self._labels: dict = {}
        self._next_label = 0

    def emit(self, op: Op, arg: Optional[int] = None) -> int:
        """Append an instruction; returns its index."""
        self._instrs.append((op, arg))
        return len(self._instrs) - 1

    def new_label(self) -> str:
        self._next_label += 1
        return f"L{self._next_label}"

    def emit_jump(self, op: Op, label: str) -> int:
        """Append a jump to a label resolved later."""
        self._instrs.append((op, label))
        return len(self._instrs) - 1

    def bind(self, label: str) -> None:
        """Bind ``label`` to the next instruction index."""
        if label in self._labels:
            raise ValueError(f"label {label} bound twice")
        self._labels[label] = len(self._instrs)

    @property
    def here(self) -> int:
        return len(self._instrs)

    def finish(self, n_locals: int) -> FunctionCode:
        """Resolve labels and freeze the function's bytecode."""
        code: List[Instr] = []
        for op, arg in self._instrs:
            if isinstance(arg, str):
                if arg not in self._labels:
                    raise ValueError(f"unbound label {arg}")
                arg = self._labels[arg]
            code.append(Instr(op, arg))
        return FunctionCode(name=self.name, n_args=self.n_args,
                            n_locals=n_locals, code=tuple(code))

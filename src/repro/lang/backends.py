"""Execution-backend registry for :mod:`repro.lang`.

Every way of running a compiled :class:`~repro.lang.bytecode.Program`
— the tree-walk reference, closure-threaded fast dispatch, generated
straight-line Python, and the AST-level native compiler — lives behind
one :class:`Backend` protocol.  Consumers (the :class:`Interpreter`,
the enclave's batch runner, ``bench-smoke``, the CLI ``--backend``
flags) resolve backends by name through :func:`get` instead of
hard-coding dispatch modes, so adding an execution strategy (SoA
vectorization, trace specialization, ...) is one ``register()`` call,
not a fork of the interpreter.

The contract, enforced by the five-backend differential harness in
``tests/lang/test_differential.py``:

* ``tree``, ``fast`` and ``pycodegen`` are bit-for-bit equivalent —
  results, :class:`ExecStats`, fault class and fault *reason*.
* ``native`` agrees on the ok/fault outcome and, when ok, on
  ``(value, fields, arrays)``; its stats are empty and its fault
  wording is its own (it runs Python semantics, not the bytecode VM).
* ``execute_batch`` entries are bit-identical to back-to-back
  ``execute`` calls on a shared interpreter (RNG state threads
  through); faults are isolated per snapshot.

Backends may cache compiled artifacts on ``Program`` instances;
:func:`invalidate` (or ``Backend.invalidate``) must drop every such
artifact — the enclave calls it whenever a function is replaced or
removed so stale handlers can never run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from .bytecode import Program
from .interpreter import ExecResult, InterpreterFault

#: Environment variable overriding the default dispatch for every
#: ``Interpreter`` constructed without an explicit one.  CI's codegen
#: job sets ``REPRO_DISPATCH=pycodegen`` to force the generated-code
#: backend through every enclave/stack path.
DISPATCH_ENV = "REPRO_DISPATCH"


def default_dispatch() -> str:
    return os.environ.get(DISPATCH_ENV, "fast")


class Backend:
    """One way to execute compiled programs.

    Subclasses override :meth:`execute` (required) and, when they can
    do better than the generic scalar loop, :meth:`execute_batch` and
    :meth:`make_batch_runner`.  ``interp`` carries the limits
    (``max_operand_stack``, ``max_call_depth``, ``max_heap_words``,
    ``op_budget``) plus the ``rng``/``clock`` sources; backends must
    honor all of them to keep fault parity.
    """

    #: Registry key, e.g. ``"fast"``.
    name: str = ""

    def execute(self, interp, program: Program,
                fields: Sequence[int],
                arrays: Sequence[Sequence[int]],
                args: Sequence[int] = ()) -> ExecResult:
        raise NotImplementedError

    def execute_batch(self, interp, program: Program,
                      snapshots: Sequence[Tuple[Sequence[int],
                                                Sequence[
                                                    Sequence[int]]]],
                      args: Sequence[int] = ()) -> List[object]:
        """Scalar fallback: per-snapshot execute, faults isolated."""
        out: List[object] = []
        for fields, arrays in snapshots:
            try:
                out.append(self.execute(interp, program, fields,
                                        arrays, args))
            except InterpreterFault as fault:
                out.append(fault)
        return out

    def make_batch_runner(self, interp, program: Program):
        """An object with ``.run(fields, arrays, args=())`` hoisting
        per-call setup across a batch group, or None when the scalar
        path is already optimal for this backend."""
        return None

    def invalidate(self, program: Program) -> bool:
        """Drop any compiled artifact cached on ``program``.

        Returns True when something was dropped.  Must be safe to call
        on programs this backend has never seen.
        """
        return False

    def stats(self) -> Dict[str, int]:
        """Backend-level counters (compiles, cache churn, ...)."""
        return {}


class TreeBackend(Backend):
    """The decode-per-op reference loop (``Interpreter.execute_tree``)."""

    name = "tree"

    def execute(self, interp, program, fields, arrays, args=()):
        return interp.execute_tree(program, fields, arrays, args)


class FastBackend(Backend):
    """Closure-threaded dispatch with mined superinstructions."""

    name = "fast"

    def execute(self, interp, program, fields, arrays, args=()):
        from .fastdispatch import execute_fast
        return execute_fast(interp, program, fields, arrays, args)

    def execute_batch(self, interp, program, snapshots, args=()):
        from .fastdispatch import execute_fast_batch
        return execute_fast_batch(interp, program, snapshots, args)

    def make_batch_runner(self, interp, program):
        from .fastdispatch import BatchRunner
        return BatchRunner(interp, program)

    def invalidate(self, program):
        if getattr(program, "_fast_lists", None) is not None:
            object.__setattr__(program, "_fast_lists", None)
            return True
        return False


class PycodegenBackend(Backend):
    """Generated straight-line Python per program (zero dispatch)."""

    name = "pycodegen"

    def execute(self, interp, program, fields, arrays, args=()):
        from .pycodegen import execute_codegen
        return execute_codegen(interp, program, fields, arrays, args)

    def execute_batch(self, interp, program, snapshots, args=()):
        from .pycodegen import execute_codegen_batch
        return execute_codegen_batch(interp, program, snapshots, args)

    def make_batch_runner(self, interp, program):
        from .pycodegen import CodegenRunner
        return CodegenRunner(interp, program)

    def invalidate(self, program):
        from .pycodegen import invalidate
        return invalidate(program)

    def stats(self):
        from .pycodegen import stats
        return stats()


class NativeBackend(Backend):
    """AST-level compilation to plain Python (outcome parity only).

    Needs the typed AST, which :func:`repro.lang.compiler.compile_action`
    attaches to the program as ``_prog_ast``; hand-assembled programs
    without it cannot run natively.  Stats are empty and entry
    arguments are rejected — both documented native limitations.
    """

    name = "native"

    def _function(self, interp, program):
        from .native import NativeFunction

        prog_ast = getattr(program, "_prog_ast", None)
        if prog_ast is None:
            raise InterpreterFault(
                "native backend needs a compiler-produced program "
                "(no typed AST attached)", program.name)
        nf = getattr(program, "_native_fn", None)
        if nf is None:
            nf = NativeFunction(prog_ast, program, rng=interp.rng,
                                clock=interp.clock)
            object.__setattr__(program, "_native_fn", nf)
        else:
            # The compiled entry is rng/clock-agnostic; rebind the
            # sources so a cached function follows its interpreter.
            nf.rng = interp.rng
            nf.clock = interp.clock
        return nf

    def execute(self, interp, program, fields, arrays, args=()):
        return self._function(interp, program).execute(fields, arrays,
                                                       args)

    def invalidate(self, program):
        if getattr(program, "_native_fn", None) is not None:
            object.__setattr__(program, "_native_fn", None)
            return True
        return False


_REGISTRY: Dict[str, Backend] = {}


def register(backend: Backend) -> Backend:
    """Add (or replace) a backend under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def names() -> List[str]:
    return sorted(_REGISTRY)


def invalidate(program: Program) -> Dict[str, bool]:
    """Drop every backend's cached artifact for ``program``.

    The enclave calls this on ``replace_function``/``remove_function``
    so no backend can ever reuse a stale compiled handler.  Returns
    ``{backend name: dropped?}`` for observability.
    """
    return {name: backend.invalidate(program)
            for name, backend in _REGISTRY.items()}


register(TreeBackend())
register(FastBackend())
register(PycodegenBackend())
register(NativeBackend())

"""Bytecode -> straight-line Python codegen backend.

The fast-dispatch backend (:mod:`repro.lang.fastdispatch`) still pays
one closure call per (super)instruction.  This module removes dispatch
entirely: each :class:`~repro.lang.bytecode.Program` is translated to
Python source — one ``def`` per bytecode function, operand-stack slots
lowered to Python locals — and ``compile()``d once.  Branches are
recovered into real ``while``/``if`` structures (the compiler emits
reducible, linearly laid out control flow), guards and budget checks
are inlined, and the 64-bit wraparound is folded away wherever the
operand ranges make it the identity (``&``, ``|``, ``^``, ``~``,
``>>``, ``%`` of in-range values stay in range).

Three execution tiers, chosen per program at compile time:

* ``structured`` — loops become ``while True:`` regions, forward
  branches become ``if``/``else``; zero dispatch overhead.
* ``blocks`` — a ``while``/``elif`` basic-block machine for control
  flow the structurizer does not recognize (e.g. exotic
  optimizer-threaded jumps); still straight-line inside blocks.
* ``delegate`` — programs whose operand-stack depth is not statically
  consistent (hand-assembled bytecode the verifier would reject) run
  unchanged on fast dispatch, which is bit-for-bit the tree walk.

Semantics are kept bit-for-bit identical to the tree walk on results,
:class:`ExecStats` and fault *reasons* (the differential harness in
``tests/lang/test_differential.py`` enforces this across five
backends).  Two knowing divergences, both shared with fast dispatch:
jumps to negative targets fault as "fell off end of code" instead of
wrapping Python-style, and op-budget accounting is hoisted to segment
granularity — a budget fault can fire at a segment boundary a few ops
before the tree walk would raise it mid-segment (observable only with
budgets tighter than one straight-line segment; superinstruction
windows hoist identically).

Compiled code objects are cached on the ``Program`` instance plus a
bounded LRU registry; :func:`invalidate` drops both (the enclave calls
it from ``replace_function``/``remove_function``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bytecode import (INT_MASK, INT_MAX, Instr, Op, Program,
                       STACK_EFFECT, wrap64)
from .fastdispatch import (_Ctx, _NO_BUDGET, _budget_fault,
                           _stack_fault, execute_fast)
from .interpreter import (ExecResult, ExecStats, InterpreterFault,
                          _copy_in, _finish, _make_locals)

_CARRY = 1 << 64

#: Modes a program can compile to (``stats()`` reports the tally).
MODE_STRUCTURED = "structured"
MODE_BLOCKS = "blocks"
MODE_DELEGATE = "delegate"

#: Bounded code cache: at most this many compiled programs are kept
#: alive by the registry (the per-Program side attribute is dropped on
#: eviction, forcing a recompile if the program is executed again).
CACHE_LIMIT = 256

_CMP_SYM = {
    Op.CEQ: "==", Op.CNE: "!=", Op.CLT: "<",
    Op.CLE: "<=", Op.CGT: ">", Op.CGE: ">=",
}

#: Ops the emitters understand; anything else delegates the program.
_KNOWN_OPS = frozenset(Op)


class _Bail(Exception):
    """Structurizer cannot express this function; fall to blocks."""


class CompiledProgram:
    """One program's generated entry point plus bookkeeping."""

    __slots__ = ("program", "entry", "n_locals", "modes", "source")

    def __init__(self, program: Program, entry, n_locals: int,
                 modes: Tuple[str, ...], source: str) -> None:
        self.program = program
        self.entry = entry
        self.n_locals = n_locals
        self.modes = modes          # per-function tier
        self.source = source


# -- static operand-stack depth analysis --------------------------------

def _depth_map(program: Program, code: Sequence[Instr]
               ) -> Optional[Dict[int, int]]:
    """Depth *before* each reachable pc, or None if inconsistent.

    Mirrors the verifier's abstract interpretation but is tolerant:
    RET/HALT at any depth are fine (the tree walk returns 0 on an
    empty stack) and out-of-range jump targets simply have no
    successor (they fault as "fell off end" at run time).  A depth
    mismatch at a merge point or a static underflow returns None —
    such programs delegate to fast dispatch.
    """
    n = len(code)
    depth_at: Dict[int, int] = {0: 0}
    work = [0]
    while work:
        pc = work.pop()
        depth = depth_at[pc]
        instr = code[pc]
        op = instr.op
        if op.__class__ is not Op:
            return None           # raw-int opcodes: delegate
        if op is Op.CALL:
            try:
                callee = program.functions[instr.arg]
            except (IndexError, TypeError):
                continue          # compiles to a raiser; no successor
            if callee.n_args > callee.n_locals:
                # Frame wider than its local file; the tree walk
                # tolerates it but our generated signatures cannot.
                return None
            pops, pushes = callee.n_args, 1
        elif op in (Op.RET, Op.HALT):
            continue
        else:
            pops, pushes = STACK_EFFECT[op]
        if depth < pops:
            return None
        new_depth = depth - pops + pushes
        if op is Op.JMP:
            succs = [instr.arg]
        elif op in (Op.JZ, Op.JNZ):
            succs = [instr.arg, pc + 1]
        else:
            succs = [pc + 1]
        for succ in succs:
            if not 0 <= succ < n:
                continue          # fell-off-end raiser at run time
            if succ in depth_at:
                if depth_at[succ] != new_depth:
                    return None
            else:
                depth_at[succ] = new_depth
                work.append(succ)
    return depth_at


# -- shared per-op statement emission -----------------------------------

class _FuncEmitter:
    """Emits the Python body of one bytecode function.

    Both tiers share the per-op lowering; they differ only in how
    control transfers are rendered.  Operand-stack slot ``k`` is the
    Python local ``s{k}``; bytecode locals are the parameters
    ``l{k}``.  Budget accounting is hoisted: ops are counted per
    straight-line segment and the check is spliced in *ahead* of the
    segment's statements (same policy as fused superinstructions).
    """

    def __init__(self, program: Program, fi: int,
                 depth_at: Dict[int, int]) -> None:
        self.program = program
        self.fi = fi
        self.fn = program.functions[fi]
        self.code = self.fn.code
        self.depth_at = depth_at
        self.lines: List[str] = []
        self.indent = 2
        # Segment state (budget hoisting + stack-check filtering).
        self._anchor = 0
        self._anchor_indent = 2
        self._pending = 0
        self._seg_pc = 0
        self._seg_high = 0

    # -- low-level helpers ----------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def new_segment(self, pc: int, depth: int) -> None:
        self._anchor = len(self.lines)
        self._anchor_indent = self.indent
        self._pending = 0
        self._seg_pc = pc
        # ``depth - 1``, not ``depth``: every depth *strictly below*
        # the segment-entry depth has provably been through a check on
        # any path reaching here, but the entry depth itself may not
        # have (a CALL's result push is never checked — the tree walk
        # jumps straight past it).  Starting one lower keeps skipped
        # checks provably no-ops; extra checks land on pushes, where
        # the tree walk checks too, so they are exact either way.
        self._seg_high = depth - 1

    def flush(self) -> None:
        """Splice the segment's op count + budget check at its start."""
        if self._pending:
            pad = "    " * self._anchor_indent
            self.lines[self._anchor:self._anchor] = [
                f"{pad}ctx.ops += {self._pending}",
                f"{pad}if ctx.ops > ctx.budget:",
                f"{pad}    _budget_fault(ctx, {self._seg_pc})",
            ]
        self._pending = 0
        self._anchor = len(self.lines)
        self._anchor_indent = self.indent

    def _depth_check(self, new_depth: int, fault_pc: int) -> None:
        """The tree walk's post-push high-water bookkeeping.

        Emitted only when ``new_depth`` exceeds every depth seen so
        far in this segment — earlier checks already cover lower
        depths, and ``ctx.max_seen`` keeps the filter exact across
        segments.
        """
        if new_depth <= self._seg_high:
            return
        self._seg_high = new_depth
        self.w(f"_d = _o + {new_depth}")
        self.w("if _d > ctx.max_seen:")
        self.w("    ctx.max_seen = _d")
        self.w("    if _d > ctx.stack_limit:")
        self.w(f"        _stack_fault(ctx, _d, {fault_pc})")

    def _wrap_into(self, slot: str, expr: str) -> None:
        self.w(f"_v = ({expr}) & {INT_MASK}")
        self.w(f"{slot} = _v - {_CARRY} if _v > {INT_MAX} else _v")

    def _raise(self, reason_expr: str, pc: int) -> None:
        self.w(f"raise InterpreterFault({reason_expr}, _NAME, {pc})")

    # -- one straight-line op -------------------------------------------

    def emit_op(self, pc: int, instr: Instr) -> bool:
        """Emit a non-control op; returns False when the op is an
        unconditional raiser (terminates the path)."""
        op = instr.op
        d = self.depth_at[pc]
        self._pending += 1
        top = f"s{d - 1}"
        nxt = f"s{d}"
        if op is Op.CONST:
            self.w(f"{nxt} = {wrap64(instr.arg)}")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.LOAD:
            slot = self._local_slot(instr.arg)
            if slot is None:
                return self._underflow_raiser(pc)
            self.w(f"{nxt} = l{slot}")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.STORE:
            slot = self._local_slot(instr.arg)
            if slot is None:
                return self._underflow_raiser(pc)
            self.w(f"l{slot} = {top}")
        elif op is Op.POP:
            pass
        elif op is Op.DUP:
            self.w(f"{nxt} = {top}")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.SWAP:
            self.w(f"s{d - 1}, s{d - 2} = s{d - 2}, s{d - 1}")
        elif op in (Op.ADD, Op.SUB, Op.MUL):
            sym = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*"}[op]
            self._wrap_into(f"s{d - 2}", f"s{d - 2} {sym} {top}")
        elif op is Op.DIV:
            self.w(f"if {top} == 0:")
            self.indent += 1
            self._raise("'division by zero'", pc)
            self.indent -= 1
            self._wrap_into(f"s{d - 2}", f"s{d - 2} // {top}")
        elif op is Op.MOD:
            self.w(f"if {top} == 0:")
            self.indent += 1
            self._raise("'modulo by zero'", pc)
            self.indent -= 1
            self.w(f"s{d - 2} = s{d - 2} % {top}")
        elif op is Op.NEG:
            self._wrap_into(top, f"-{top}")
        elif op in (Op.BAND, Op.BOR, Op.BXOR):
            sym = {Op.BAND: "&", Op.BOR: "|", Op.BXOR: "^"}[op]
            self.w(f"s{d - 2} = s{d - 2} {sym} {top}")
        elif op is Op.BNOT:
            self.w(f"{top} = ~{top}")
        elif op in (Op.SHL, Op.SHR):
            self.w(f"if not 0 <= {top} < 64:")
            self.indent += 1
            self._raise(
                "f'shift amount {" + top + "} out of range'", pc)
            self.indent -= 1
            if op is Op.SHL:
                self._wrap_into(f"s{d - 2}", f"s{d - 2} << {top}")
            else:
                self.w(f"s{d - 2} = s{d - 2} >> {top}")
        elif op in _CMP_SYM:
            self.w(f"s{d - 2} = 1 if s{d - 2} {_CMP_SYM[op]} {top} "
                   f"else 0")
        elif op is Op.NOTL:
            self.w(f"{top} = 1 if {top} == 0 else 0")
        elif op is Op.GETF:
            if not self._index_ok(instr.arg, self.program.field_table):
                return self._underflow_raiser(pc)
            self.w(f"{nxt} = F[{instr.arg}]")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.PUTF:
            try:
                ref = self.program.field_table[instr.arg]
            except (IndexError, TypeError):
                return self._underflow_raiser(pc)
            if not ref.writable:
                self._raise(
                    f"'write to read-only field "
                    f"{ref.scope}.{ref.name}'", pc)
                return False
            self.w(f"F[{instr.arg}] = {top}")
        elif op is Op.ABASE:
            if not self._index_ok(instr.arg, self.program.array_table):
                return self._underflow_raiser(pc)
            self.w(f"{nxt} = B[{instr.arg}]")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.ALEN:
            if not self._index_ok(instr.arg, self.program.array_table):
                return self._underflow_raiser(pc)
            self.w(f"{nxt} = L[{instr.arg}]")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.HLOAD:
            self.w(f"if not 0 <= {top} < len(H):")
            self.indent += 1
            self._raise(
                "f'heap read at {" + top + "} out of bounds "
                "(heap has {len(H)} words)'", pc)
            self.indent -= 1
            self.w(f"{top} = H[{top}]")
        elif op is Op.HSTORE:
            self.w("for _lo, _hi in W:")
            self.w(f"    if _lo <= {top} < _hi:")
            self.w(f"        H[{top}] = s{d - 2}")
            self.w("        break")
            self.w("else:")
            self.indent += 1
            self._raise(
                "f'heap write at {" + top + "} outside writable "
                "regions'", pc)
            self.indent -= 1
        elif op is Op.RAND:
            self.w(f"if {top} <= 0:")
            self.indent += 1
            self._raise(
                "f'rand bound {" + top + "} must be positive'", pc)
            self.indent -= 1
            self.w(f"{top} = ctx.rng.randrange({top})")
        elif op is Op.CLOCK:
            self.w("_c = ctx.clock_value")
            self.w("if _c is None:")
            self.w(f"    _v = ctx.clock() & {INT_MASK}")
            self.w(f"    _c = ctx.clock_value = _v - {_CARRY} "
                   f"if _v > {INT_MAX} else _v")
            self.w(f"{nxt} = _c")
            self._depth_check(d + 1, pc + 1)
        elif op is Op.CALL:
            return self._emit_call(pc, instr, d)
        else:                      # pragma: no cover - control ops
            raise AssertionError(f"emit_op got control op {op!r}")
        return True

    def _emit_call(self, pc: int, instr: Instr, d: int) -> bool:
        try:
            callee = self.program.functions[instr.arg]
        except (IndexError, TypeError):
            return self._underflow_raiser(pc)
        fidx = instr.arg
        if fidx < 0:               # Python-style negative index
            fidx += len(self.program.functions)
        n_args = callee.n_args
        if d < n_args:             # static underflow -> delegated
            return self._underflow_raiser(pc)
        # The CALL op itself is charged before the callee runs, like
        # the tree walk (budget check included via the flush).
        self.flush()
        self.w("if ctx.depth >= ctx.call_limit:")
        self.indent += 1
        self._raise("f'call depth exceeds {ctx.call_limit}'", pc)
        self.indent -= 1
        remain = d - n_args
        args = ", ".join(f"s{k}" for k in range(remain, d))
        pad = ", ".join("0" for _ in
                        range(callee.n_locals - n_args))
        call_args = ", ".join(p for p in ("ctx", args, pad) if p)
        if remain:
            self.w(f"ctx.outer += {remain}")
        self.w("ctx.depth += 1")
        self.w("if ctx.depth > ctx.max_depth:")
        self.w("    ctx.max_depth = ctx.depth")
        self.w(f"_r = _f{fidx}({call_args})")
        self.w("ctx.depth -= 1")
        self.w("if ctx.halted:")
        self.w("    return _r")
        if remain:
            self.w(f"ctx.outer -= {remain}")
        # No depth check on the pushed result: the tree walk's RET
        # path jumps straight to the next instruction.
        self.w(f"s{remain} = _r")
        self.new_segment(pc + 1, self.depth_at.get(pc + 1, remain + 1))
        return True

    def emit_return(self, pc: int, instr: Instr) -> None:
        """RET or HALT (both return the frame's value)."""
        d = self.depth_at[pc]
        self._pending += 1
        self.flush()
        value = f"s{d - 1}" if d > 0 else "0"
        if instr.op is Op.HALT:
            self.w("ctx.halted = True")
        self.w(f"return {value}")

    def emit_fell_off(self, pc: int) -> None:
        self.flush()
        self._raise("'fell off end of code'", pc)

    # -- small helpers ----------------------------------------------------

    def _local_slot(self, arg) -> Optional[int]:
        n = self.fn.n_locals
        if isinstance(arg, int):
            if 0 <= arg < n:
                return arg
            if -n <= arg < 0:      # Python-style negative indexing,
                return n + arg     # matching the tree walk's list read
        return None

    def _index_ok(self, arg, table) -> bool:
        try:
            table[arg]
        except (IndexError, TypeError):
            return False
        return True

    def _underflow_raiser(self, pc: int) -> bool:
        # The tree walk hits IndexError on out-of-range table/slot
        # operands and reports an operand-stack underflow; fast
        # dispatch reproduces that, and so do we.
        self._raise("'operand stack underflow'", pc)
        return False


# -- tier 1: structured control-flow recovery ---------------------------

class _Structurizer(_FuncEmitter):
    """Recovers ``while``/``if`` structure from the linear layout.

    Assumes the compiler's reducible shapes: back edges only to loop
    headers, loops properly nested, forward branches forming
    if/else diamonds or if-joins.  Raises :class:`_Bail` on anything
    else; the caller falls back to the block machine.
    """

    def __init__(self, program: Program, fi: int,
                 depth_at: Dict[int, int]) -> None:
        super().__init__(program, fi, depth_at)
        code = self.code
        n = len(code)
        self._targets: Set[int] = set()
        back: Dict[int, int] = {}
        for pc, instr in enumerate(code):
            if instr.op in (Op.JMP, Op.JZ, Op.JNZ):
                t = instr.arg
                if isinstance(t, int) and 0 <= t < n:
                    self._targets.add(t)
                    if t <= pc:
                        back[t] = max(back.get(t, 0), pc)
        #: header -> region end (one past the last back-edge source).
        self._loops = {h: src + 1 for h, src in back.items()}
        # Absorb a trailing exit jump: the compiler's for-loops end
        # with ``JZ header; JMP header+k`` where the JMP targets the
        # pc right after itself.  Folding that JMP into the region
        # makes every in-loop jump to it a plain ``break``.
        for h, e in list(self._loops.items()):
            if e < n and code[e].op is Op.JMP and code[e].arg == e + 1:
                self._loops[h] = e + 1
        regions = sorted((h, e) for h, e in self._loops.items())
        for i, (h1, e1) in enumerate(regions):
            for h2, e2 in regions[i + 1:]:
                if h2 < e1 and e2 > e1:
                    raise _Bail("loops not properly nested")
        # No jumps into a loop interior from outside it.
        for pc, instr in enumerate(code):
            if instr.op not in (Op.JMP, Op.JZ, Op.JNZ):
                continue
            t = instr.arg
            for h, e in self._loops.items():
                if h < t < e and not h <= pc < e:
                    raise _Bail("jump into loop interior")
        self._open: List[Tuple[int, int]] = []   # (header, end) stack
        self._emitted: Set[int] = set()
        self._dup = 0              # >0 while re-emitting a shared block

    def generate(self) -> None:
        self.new_segment(0, 0)
        falls = self._emit_seq(0, len(self.code))
        if falls:
            self.emit_fell_off(len(self.code))

    # Returns True when control can fall through past ``end``; False
    # when every path out of [start, end) transfers elsewhere.
    def _emit_seq(self, start: int, end: int,
                  escape: Optional[Tuple[int, int, int]] = None
                  ) -> bool:
        code = self.code
        pc = start
        while pc < end:
            if pc in self._loops and \
                    (not self._open or self._open[-1][0] != pc):
                le = self._loops[pc]
                if le > end:
                    raise _Bail("loop region crosses sequence end")
                self.flush()
                self.w("while True:")
                self.indent += 1
                self._open.append((pc, le))
                self.new_segment(pc, self.depth_at.get(pc, 0))
                falls = self._emit_seq(pc, le)
                if falls:
                    # The body's tail can fall past the region end
                    # (e.g. a conditional back edge as last op):
                    # charge its pending ops, then leave the loop.
                    self.flush()
                    self.w("break")
                self._open.pop()
                self.indent -= 1
                self.new_segment(le, self.depth_at.get(le, 0))
                pc = le
                continue
            if pc in self._emitted and not self._dup:
                raise _Bail("pc emitted twice")
            if pc not in self.depth_at:
                # Dead code: skippable unless something jumps here
                # (which would mean our reachability disagrees).
                if pc in self._targets:
                    raise _Bail("jump target unreachable in analysis")
                pc += 1
                continue
            if not self._dup:
                self._emitted.add(pc)
            instr = code[pc]
            op = instr.op
            if op is Op.JMP:
                pc = self._emit_jmp(pc, instr, end)
                if pc is None:
                    return False
                continue
            if op in (Op.JZ, Op.JNZ):
                pc = self._emit_branch(pc, instr, end, escape)
                if pc is None:
                    return False
                continue
            if op in (Op.RET, Op.HALT):
                self.emit_return(pc, instr)
                nxt = self._skip_dead(pc + 1, end)
                if nxt is None:
                    return False
                pc = nxt
                self.new_segment(pc, self.depth_at.get(pc, 0))
                continue
            if not self.emit_op(pc, instr):
                # Unconditional raiser (readonly PUTF etc.).
                self.flush()
                nxt = self._skip_dead(pc + 1, end)
                if nxt is None:
                    return False
                pc = nxt
                self.new_segment(pc, self.depth_at.get(pc, 0))
                continue
            pc += 1
        return True

    def _skip_dead(self, pc: int, end: int) -> Optional[int]:
        """After an unconditional terminator: skip dead code; bail if
        a live join follows (the structurizer should have consumed it
        through an if/else)."""
        while pc < end:
            if pc in self.depth_at and pc not in self._emitted:
                if pc in self._targets:
                    raise _Bail("live join after terminator")
                raise _Bail("reachable fall-in after terminator")
            if pc in self._targets and pc not in self._emitted:
                raise _Bail("dead jump target after terminator")
            pc += 1
        return None

    def _emit_jmp(self, pc: int, instr: Instr,
                  end: int) -> Optional[int]:
        t = instr.arg
        self._pending += 1
        if self._open and t == self._open[-1][0]:
            self.flush()
            self.w("continue")
            return self._after_terminator(pc, end)
        if self._open and t == self._open[-1][1]:
            self.flush()
            self.w("break")
            return self._after_terminator(pc, end)
        if not isinstance(t, int) or not 0 <= t <= len(self.code):
            self.emit_fell_off(pc)  # negative/huge target (clamped)
            return self._after_terminator(pc, end)
        if t == len(self.code):
            self.emit_fell_off(len(self.code))
            return self._after_terminator(pc, end)
        if t > pc and t <= end:
            # Forward skip over dead code only.
            for q in range(pc + 1, t):
                if q in self.depth_at or q in self._targets:
                    raise _Bail("forward JMP over live code")
            self.flush()
            self.new_segment(t, self.depth_at.get(t, 0))
            return t
        raise _Bail("unstructured JMP")

    def _after_terminator(self, pc: int, end: int) -> Optional[int]:
        nxt = self._skip_dead(pc + 1, end)
        if nxt is None:
            return None
        self.new_segment(nxt, self.depth_at.get(nxt, 0))
        return nxt

    def _emit_branch(self, pc: int, instr: Instr, end: int,
                     escape: Optional[Tuple[int, int, int]] = None
                     ) -> Optional[int]:
        code = self.code
        t = instr.arg
        d = self.depth_at[pc]
        cond = f"s{d - 1}"
        # Fall-through executes when the jump is NOT taken.
        fall_sym = "!=" if instr.op is Op.JZ else "=="
        take_sym = "==" if instr.op is Op.JZ else "!="
        self._pending += 1
        if escape is not None and t == escape[0]:
            # Short-circuit boolean chains: several conditional jumps
            # escape to the same small else-block of an enclosing
            # if/else (e.g. ``a and b`` pushing 0/1).  Emit a private
            # copy of that block on the taken arm — op accounting
            # stays per-path exact — and nest the rest of this branch
            # under ``else`` so the copy falls straight to the join.
            es, join, jmp_pc = escape
            self.flush()
            self.w(f"if {cond} {take_sym} 0:")
            self.indent += 1
            self.new_segment(es, self.depth_at.get(es, d - 1))
            self._dup += 1
            falls = self._emit_seq(es, join)
            self._dup -= 1
            if falls:
                self.flush()
            self.indent -= 1
            self.w("else:")
            self.indent += 1
            self.new_segment(pc + 1, d - 1)
            falls = self._emit_seq(pc + 1, end, escape)
            if falls:
                self._pending += 1     # the enclosing join JMP
                self.flush()
            self.indent -= 1
            return None
        if not isinstance(t, int) or not 0 <= t <= len(code):
            t = len(code)
        if t == len(code):
            self.flush()
            self.w(f"if {cond} {take_sym} 0:")
            self.indent += 1
            self.new_segment(pc, d - 1)
            self.emit_fell_off(len(code))
            self.indent -= 1
            self.new_segment(pc + 1, d - 1)
            return pc + 1
        if self._open and t == self._open[-1][0]:
            self.flush()
            self.w(f"if {cond} {take_sym} 0:")
            self.w("    continue")
            self.new_segment(pc + 1, d - 1)
            return pc + 1
        if self._open and t == self._open[-1][1]:
            self.flush()
            self.w(f"if {cond} {take_sym} 0:")
            self.w("    break")
            self.new_segment(pc + 1, d - 1)
            return pc + 1
        if t <= pc or t > end:
            raise _Bail("unstructured conditional branch")
        if t == pc + 1:
            # Branch to the next instruction: pure pop.
            return pc + 1
        # if/else: the then-part ends with a forward JMP to the join.
        last = code[t - 1]
        if last.op is Op.JMP and isinstance(last.arg, int) \
                and t <= last.arg <= end \
                and not (self._open and
                         last.arg in (self._open[-1][0],)) \
                and last.arg != len(code):
            join = last.arg
            self.flush()
            self.w(f"if {cond} {fall_sym} 0:")
            self.indent += 1
            self.new_segment(pc + 1, d - 1)
            if not self._dup:
                self._emitted.add(t - 1)
            falls = self._emit_seq(pc + 1, t - 1,
                                   escape=(t, join, t - 1))
            if falls:
                # Charge the join JMP where it actually executes —
                # at the then-branch tail, not hoisted over any
                # nested loops the branch may contain.
                self._pending += 1
                self.flush()
            self.indent -= 1
            if join > t:
                self.w("else:")
                self.indent += 1
                self.new_segment(t, self.depth_at.get(t, d - 1))
                falls = self._emit_seq(t, join)
                if falls:
                    self.flush()
                self.indent -= 1
            self.new_segment(join, self.depth_at.get(join, 0))
            return join
        # Plain if: [pc+1, t) guarded, join at t.
        self.flush()
        self.w(f"if {cond} {fall_sym} 0:")
        self.indent += 1
        self.new_segment(pc + 1, d - 1)
        falls = self._emit_seq(pc + 1, t)
        if falls:
            self.flush()
        self.indent -= 1
        self.new_segment(t, self.depth_at.get(t, d - 1))
        return t


# -- tier 2: basic-block machine ----------------------------------------

class _BlockEmitter(_FuncEmitter):
    """``while``/``elif`` dispatch over basic blocks.

    Fully general (any jump graph with consistent depths); the elif
    scan costs a few integer compares per transfer, so this tier is
    slower than structured recovery but still dispatch-free inside
    blocks.
    """

    def generate(self) -> None:
        code = self.code
        n = len(code)
        leaders = {0}
        for pc, instr in enumerate(code):
            if instr.op in (Op.JMP, Op.JZ, Op.JNZ):
                if isinstance(instr.arg, int) and 0 <= instr.arg < n:
                    leaders.add(instr.arg)
                if pc + 1 < n:
                    leaders.add(pc + 1)
        order = sorted(p for p in leaders if p in self.depth_at)
        self.w("_b = 0")
        self.w("while True:")
        self.indent += 1
        first = True
        for b in order:
            self.w(("if" if first else "elif") + f" _b == {b}:")
            first = False
            self.indent += 1
            self.new_segment(b, self.depth_at[b])
            self._emit_block(b, leaders, n)
            self.indent -= 1
        self.w("else:" if not first else "if True:")
        self.indent += 1
        self.new_segment(n, 0)
        self.emit_fell_off(n)
        self.indent -= 1
        self.indent -= 1

    def _goto(self, target: int, n: int) -> None:
        if not isinstance(target, int) or not 0 <= target < n:
            target = -1            # fell-off sentinel (else branch)
        self.w(f"_b = {target}")
        self.w("continue")

    def _emit_block(self, start: int, leaders: Set[int],
                    n: int) -> None:
        code = self.code
        pc = start
        while True:
            if pc >= n:
                self.emit_fell_off(n)
                return
            instr = code[pc]
            op = instr.op
            if op is Op.JMP:
                self._pending += 1
                self.flush()
                self._goto(instr.arg, n)
                return
            if op in (Op.JZ, Op.JNZ):
                d = self.depth_at[pc]
                cond = f"s{d - 1}"
                sym = "==" if op is Op.JZ else "!="
                t = instr.arg
                if not isinstance(t, int) or not 0 <= t < n:
                    t = -1
                self._pending += 1
                self.flush()
                self.w(f"_b = {t} if {cond} {sym} 0 else {pc + 1}")
                self.w("continue")
                return
            if op in (Op.RET, Op.HALT):
                self.emit_return(pc, instr)
                return
            if not self.emit_op(pc, instr):
                self.flush()
                return
            pc += 1
            if pc in leaders:
                self.flush()
                self._goto(pc, n)
                return


# -- program compilation ------------------------------------------------

def _function_source(program: Program, fi: int
                     ) -> Optional[Tuple[str, List[str]]]:
    """(mode, lines) of one generated function, or None to delegate."""
    fn = program.functions[fi]
    if not fn.code:
        return None
    depth_at = _depth_map(program, fn.code)
    if depth_at is None:
        return None
    try:
        emitter = _Structurizer(program, fi, depth_at)
        emitter.generate()
        mode = MODE_STRUCTURED
    except _Bail:
        emitter = _BlockEmitter(program, fi, depth_at)
        emitter.generate()
        mode = MODE_BLOCKS

    params = ["ctx"] + [f"l{k}" for k in range(fn.n_locals)]
    header = [f"def _f{fi}({', '.join(params)}):"]
    prologue = ["    _o = ctx.outer"]
    ops_used = {i.op for i in fn.code}
    if ops_used & {Op.GETF, Op.PUTF}:
        prologue.append("    F = ctx.fields")
    if ops_used & {Op.HLOAD, Op.HSTORE}:
        prologue.append("    H = ctx.heap")
    if Op.ABASE in ops_used:
        prologue.append("    B = ctx.bases")
    if Op.ALEN in ops_used:
        prologue.append("    L = ctx.lengths")
    if Op.HSTORE in ops_used:
        prologue.append("    W = ctx.wranges")
    body = emitter.lines
    # _FuncEmitter writes at indent 2 (inside "while" for blocks uses
    # deeper); function bodies start at indent 1 -> dedent once.
    body = [ln[4:] if ln.startswith("    ") else ln for ln in body]
    return mode, header + prologue + body


_STATS = {
    "programs_compiled": 0,
    "functions_structured": 0,
    "functions_blocks": 0,
    "programs_delegated": 0,
    "cache_evictions": 0,
    "cache_invalidations": 0,
}

#: Bounded registry of live compiled programs (LRU by compile/use).
_CACHE: "OrderedDict[int, Program]" = OrderedDict()


def stats() -> Dict[str, int]:
    """Counters describing codegen activity (tiers, cache churn)."""
    out = dict(_STATS)
    out["cache_size"] = len(_CACHE)
    return out


def compile_pycode(program: Program) -> Optional[CompiledProgram]:
    """Generate + compile() this program; None -> delegate to fast.

    The result is NOT cached here; use :func:`code_for`.
    """
    parts: List[str] = []
    modes: List[str] = []
    for fi in range(len(program.functions)):
        res = _function_source(program, fi)
        if res is None:
            _STATS["programs_delegated"] += 1
            return None
        mode, lines = res
        modes.append(mode)
        parts.extend(lines)
        parts.append("")
    source = "\n".join(parts)
    ns = {
        "InterpreterFault": InterpreterFault,
        "_budget_fault": _budget_fault,
        "_stack_fault": _stack_fault,
        "_NAME": program.name,
    }
    exec(compile(source, f"<pycodegen:{program.name}>", "exec"), ns)
    _STATS["programs_compiled"] += 1
    for mode in modes:
        key = ("functions_structured" if mode == MODE_STRUCTURED
               else "functions_blocks")
        _STATS[key] += 1
    return CompiledProgram(program, ns["_f0"],
                           program.entry.n_locals, tuple(modes),
                           source)


_DELEGATED = object()   # cached "this program delegates" marker


def code_for(program: Program):
    """Cached compile; returns CompiledProgram or the delegate marker.

    Cached on the Program instance (cheap hot-path probe) plus a
    bounded LRU registry; eviction drops the instance attribute so an
    evicted program recompiles on next use.
    """
    cached = getattr(program, "_pycodegen", None)
    if cached is not None:
        if id(program) in _CACHE:
            _CACHE.move_to_end(id(program), last=True)
        return cached
    compiled = compile_pycode(program)
    value = compiled if compiled is not None else _DELEGATED
    object.__setattr__(program, "_pycodegen", value)
    _CACHE[id(program)] = program
    _CACHE.move_to_end(id(program), last=True)
    while len(_CACHE) > CACHE_LIMIT:
        _, evicted = _CACHE.popitem(last=False)
        if getattr(evicted, "_pycodegen", None) is not None:
            object.__setattr__(evicted, "_pycodegen", None)
        _STATS["cache_evictions"] += 1
    return value


def invalidate(program: Program) -> bool:
    """Drop a program's compiled code (enclave function replace/remove).

    Returns True when something was actually dropped.
    """
    dropped = False
    if getattr(program, "_pycodegen", None) is not None:
        object.__setattr__(program, "_pycodegen", None)
        dropped = True
    if _CACHE.pop(id(program), None) is not None:
        dropped = True
    if dropped:
        _STATS["cache_invalidations"] += 1
    return dropped


def clear_cache() -> None:
    while _CACHE:
        _, prog = _CACHE.popitem(last=False)
        if getattr(prog, "_pycodegen", None) is not None:
            object.__setattr__(prog, "_pycodegen", None)


# -- execution ----------------------------------------------------------

def _fresh_ctx(interp, program: Program) -> _Ctx:
    ctx = _Ctx()
    ctx.budget = (interp.op_budget if interp.op_budget is not None
                  else _NO_BUDGET)
    ctx.stack_limit = interp.max_operand_stack
    ctx.call_limit = interp.max_call_depth
    ctx.rng = interp.rng
    ctx.clock = interp.clock
    ctx.name = program.name
    return ctx


def _reset_ctx(ctx: _Ctx, field_file, heap, bases, lengths,
               wranges) -> None:
    ctx.fields = field_file
    ctx.heap = heap
    ctx.bases = bases
    ctx.lengths = lengths
    ctx.wranges = wranges
    ctx.ops = 0
    ctx.outer = 0
    ctx.max_seen = 0
    ctx.depth = 1
    ctx.max_depth = 1
    ctx.clock_value = None
    ctx.halted = False


def execute_codegen(interp, program: Program, fields: Sequence[int],
                    arrays: Sequence[Sequence[int]],
                    args: Sequence[int] = ()) -> ExecResult:
    """Codegen twin of ``Interpreter.execute_tree``/``execute_fast``."""
    compiled = code_for(program)
    if compiled is _DELEGATED:
        return execute_fast(interp, program, fields, arrays, args)
    locals_ = _make_locals(compiled.n_locals, args)
    if len(locals_) != compiled.n_locals:
        # Over-long entry args grow the frame beyond the generated
        # signature; the tree walk tolerates it, so delegate.
        return execute_fast(interp, program, fields, arrays, args)
    field_file, heap, bases, lengths, wranges = _copy_in(
        program, fields, arrays, interp.max_heap_words)
    ctx = _fresh_ctx(interp, program)
    _reset_ctx(ctx, field_file, heap, bases, lengths, wranges)
    result = compiled.entry(ctx, *locals_)
    stats_ = ExecStats(ops_executed=ctx.ops,
                       max_operand_stack=ctx.max_seen,
                       max_call_depth=ctx.max_depth,
                       heap_words=len(heap))
    return _finish(program, result, field_file, heap, bases, lengths,
                   stats_)


class CodegenRunner:
    """Batch executor: the :class:`~.fastdispatch.BatchRunner` analog.

    Hoists the compiled entry, limits and the context across a run of
    invocations of one ``(interpreter, program)`` pair; every
    :meth:`run` is bit-for-bit one ``execute_codegen`` call.
    """

    __slots__ = ("program", "compiled", "ctx", "n_locals", "n_fields",
                 "no_arrays", "max_heap_words", "_interp", "_fallback")

    def __init__(self, interp, program: Program) -> None:
        self.program = program
        self._interp = interp
        compiled = code_for(program)
        if compiled is _DELEGATED:
            from .fastdispatch import BatchRunner
            self._fallback = BatchRunner(interp, program)
            self.compiled = None
        else:
            self._fallback = None
            self.compiled = compiled
        self.n_locals = program.entry.n_locals
        self.n_fields = len(program.field_table)
        self.no_arrays = not program.array_table
        self.max_heap_words = interp.max_heap_words
        self.ctx = _fresh_ctx(interp, program)

    def run(self, fields: Sequence[int],
            arrays: Sequence[Sequence[int]],
            args: Sequence[int] = ()) -> ExecResult:
        if self._fallback is not None:
            return self._fallback.run(fields, arrays, args)
        compiled = self.compiled
        if self.no_arrays and not args:
            if len(fields) != self.n_fields:
                raise InterpreterFault(
                    f"expected {self.n_fields} fields, got "
                    f"{len(fields)}", self.program.name)
            if len(arrays):
                raise InterpreterFault(
                    f"expected 0 arrays, got {len(arrays)}",
                    self.program.name)
            field_file = [wrap64(v) for v in fields]
            ctx = self.ctx
            _reset_ctx(ctx, field_file, [], (), (), ())
            result = compiled.entry(
                ctx, *([0] * self.n_locals))
            return ExecResult(
                value=result, fields=field_file, arrays=[],
                stats=ExecStats(ops_executed=ctx.ops,
                                max_operand_stack=ctx.max_seen,
                                max_call_depth=ctx.max_depth,
                                heap_words=0))
        locals_ = _make_locals(self.n_locals, args)
        if len(locals_) != self.n_locals:
            # Over-long entry args: frame wider than the generated
            # signature; route this (and future) runs to fast dispatch.
            from .fastdispatch import BatchRunner
            self._fallback = BatchRunner(self._interp, self.program)
            return self._fallback.run(fields, arrays, args)
        field_file, heap, bases, lengths, wranges = _copy_in(
            self.program, fields, arrays, self.max_heap_words)
        ctx = self.ctx
        _reset_ctx(ctx, field_file, heap, bases, lengths, wranges)
        result = compiled.entry(ctx, *locals_)
        stats_ = ExecStats(ops_executed=ctx.ops,
                           max_operand_stack=ctx.max_seen,
                           max_call_depth=ctx.max_depth,
                           heap_words=len(heap))
        return _finish(self.program, result, field_file, heap, bases,
                       lengths, stats_)


def execute_codegen_batch(interp, program: Program,
                          snapshots: Sequence[Tuple[Sequence[int],
                                                    Sequence[
                                                        Sequence[int]]]],
                          args: Sequence[int] = ()) -> List[object]:
    """Batched twin of :func:`execute_codegen`, faults isolated."""
    runner = CodegenRunner(interp, program)
    out: List[object] = []
    run = runner.run
    for fields, arrays in snapshots:
        try:
            out.append(run(fields, arrays, args))
        except InterpreterFault as fault:
            out.append(fault)
    return out

"""Stack-based bytecode interpreter for Eden action functions.

Per Section 3.4.3 and 4.1 of the paper: execution is stack based,
similar in spirit to the JVM; the interpreter uses a (bounded) operand
stack and heap; a faulty action function terminates *its own* execution
without affecting the rest of the system — here, a fault raises
:class:`InterpreterFault`, which the enclave catches and turns into a
"forward unmodified" decision.

The interpreter deliberately supports an *optional* op budget.  The
paper "chose not to restrict the complexity of the computation"
(Section 6); the default follows suit (no budget), but tests and
paranoid deployments can set one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .bytecode import Op, Program, wrap64

#: Default resource bounds ("relatively small programs that use limited
#: (operand) stack and heap space", Section 4.1).
DEFAULT_MAX_OPERAND_STACK = 256   # words
DEFAULT_MAX_CALL_DEPTH = 64       # frames
DEFAULT_MAX_HEAP_WORDS = 16384    # words
WORD_BYTES = 8


class InterpreterFault(Exception):
    """The action function faulted; the packet is forwarded unmodified."""

    def __init__(self, reason: str, program: str = "",
                 pc: int = -1) -> None:
        self.reason = reason
        self.program = program
        self.pc = pc
        super().__init__(f"{program}@{pc}: {reason}" if program
                         else reason)


@dataclass
class ExecStats:
    """Resource usage of one invocation (feeds the §5.4 micro-bench)."""

    ops_executed: int = 0
    max_operand_stack: int = 0    # words
    max_call_depth: int = 0
    heap_words: int = 0

    @property
    def stack_bytes(self) -> int:
        return self.max_operand_stack * WORD_BYTES

    @property
    def heap_bytes(self) -> int:
        return self.heap_words * WORD_BYTES


@dataclass
class ExecResult:
    """Outcome of one successful invocation.

    ``fields`` holds the (possibly updated) scalar state values in
    field-table order; ``arrays`` the (possibly updated) array contents
    in array-table order, flattened by stride.  The enclave runtime
    commits the writable entries back to its authoritative state.
    """

    value: int
    fields: List[int]
    arrays: List[List[int]]
    stats: ExecStats


class _Frame:
    __slots__ = ("func_index", "locals", "stack", "return_pc")

    def __init__(self, func_index: int, locals_: List[int],
                 return_pc: int) -> None:
        self.func_index = func_index
        self.locals = locals_
        self.stack: List[int] = []
        self.return_pc = return_pc


# -- shared helpers (used by both the tree walk and fast dispatch) ------

def _make_locals(n_locals: int, args: Sequence[int]) -> List[int]:
    locals_ = list(args) + [0] * (n_locals - len(args))
    if len(locals_) < n_locals:
        raise InterpreterFault("too few arguments for frame")
    return locals_


def _copy_in(program: Program, fields: Sequence[int],
             arrays: Sequence[Sequence[int]], max_heap_words: int
             ) -> Tuple[List[int], List[int], List[int], List[int],
                        List[Tuple[int, int]]]:
    """Validate inputs and build the per-invocation state snapshot.

    Copy-in: scalars into a mutable field file, arrays into one
    contiguous heap (Section 3.4.4: the enclave "creates a consistent
    copy of the state needed by the program in the heap and stack").
    Returns ``(field_file, heap, bases, lengths, writable_ranges)``.
    """
    if len(fields) != len(program.field_table):
        raise InterpreterFault(
            f"expected {len(program.field_table)} fields, got "
            f"{len(fields)}", program.name)
    if len(arrays) != len(program.array_table):
        raise InterpreterFault(
            f"expected {len(program.array_table)} arrays, got "
            f"{len(arrays)}", program.name)
    field_file = [wrap64(v) for v in fields]
    heap: List[int] = []
    bases: List[int] = []
    lengths: List[int] = []
    writable_ranges: List[Tuple[int, int]] = []
    for ref, content in zip(program.array_table, arrays):
        if len(content) % ref.stride:
            raise InterpreterFault(
                f"array {ref.scope}.{ref.name}: length "
                f"{len(content)} not a multiple of stride "
                f"{ref.stride}", program.name)
        base = len(heap)
        bases.append(base)
        lengths.append(len(content) // ref.stride)
        heap.extend(wrap64(v) for v in content)
        if ref.writable:
            writable_ranges.append((base, len(heap)))
    if len(heap) > max_heap_words:
        raise InterpreterFault(
            f"heap of {len(heap)} words exceeds limit "
            f"{max_heap_words}", program.name)
    return field_file, heap, bases, lengths, writable_ranges


def _finish(program: Program, result: int, field_file: List[int],
            heap: List[int], bases: List[int], lengths: List[int],
            stats: ExecStats) -> ExecResult:
    arrays_out: List[List[int]] = []
    for i, ref in enumerate(program.array_table):
        base = bases[i]
        size = lengths[i] * ref.stride
        arrays_out.append(heap[base:base + size])
    return ExecResult(value=result, fields=field_file,
                      arrays=arrays_out, stats=stats)


class Interpreter:
    """Executes compiled programs against prepared state snapshots.

    One interpreter instance can be shared by all programs of an
    enclave; it holds only configuration (limits) plus the RNG and clock
    sources, not per-invocation state.

    ``dispatch`` names the execution backend in the
    :mod:`repro.lang.backends` registry: ``"fast"`` (default) runs the
    closure-threaded dispatch of :mod:`repro.lang.fastdispatch`;
    ``"tree"`` the original decode-per-op loop; ``"pycodegen"`` the
    generated straight-line Python of :mod:`repro.lang.pycodegen`.
    Those three are bit-for-bit identical (enforced by
    ``tests/lang/test_differential``); any other registered backend
    (e.g. ``"native"``) resolves the same way.  ``dispatch=None``
    picks the default — ``"fast"``, or the ``REPRO_DISPATCH``
    environment variable when set.
    """

    def __init__(self,
                 max_operand_stack: int = DEFAULT_MAX_OPERAND_STACK,
                 max_call_depth: int = DEFAULT_MAX_CALL_DEPTH,
                 max_heap_words: int = DEFAULT_MAX_HEAP_WORDS,
                 op_budget: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 clock: Optional[Callable[[], int]] = None,
                 dispatch: Optional[str] = None,
                 telemetry=None) -> None:
        self.max_operand_stack = max_operand_stack
        self.max_call_depth = max_call_depth
        self.max_heap_words = max_heap_words
        self.op_budget = op_budget
        self.rng = rng if rng is not None else random.Random(0)
        self.clock = clock if clock is not None else (lambda: 0)
        # Deferred import: backends imports from this module.
        from . import backends as _backends
        if dispatch is None:
            dispatch = _backends.default_dispatch()
        try:
            self._backend = _backends.get(dispatch)
        except KeyError:
            raise ValueError(
                f"dispatch must be one of "
                f"{', '.join(_backends.names())}; got {dispatch!r}"
            ) from None
        self.dispatch = dispatch
        if dispatch == "fast":
            # The default backend keeps its direct function reference:
            # the hot path pays one string compare and a bound call,
            # nothing registry-shaped.
            from .fastdispatch import execute_fast
            self._execute_fast = execute_fast
        # ``telemetry`` stays None when disabled so the hot path pays
        # one ``is None`` check and nothing else (the 5%-of-baseline
        # overhead gate in tests/lang/test_telemetry_overhead.py).
        self.telemetry = None
        if telemetry is not None:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle.

        Metrics/spans are recorded only at the :meth:`execute`
        boundary — never per op — so instrumented cost is O(1) per
        invocation.  A disabled bundle unbinds (telemetry stays None).
        """
        if telemetry is None or not telemetry.enabled:
            self.telemetry = None
            return
        self.telemetry = telemetry
        registry = telemetry.registry
        self._m_invocations = registry.counter(
            "interp_invocations_total", dispatch=self.dispatch)
        self._m_faults = registry.counter(
            "interp_faults_total", dispatch=self.dispatch)
        self._h_ops = registry.histogram(
            "interp_ops_per_invocation", dispatch=self.dispatch)
        self._h_stack = registry.histogram(
            "interp_max_operand_stack", dispatch=self.dispatch)

    def execute(self, program: Program,
                fields: Sequence[int],
                arrays: Sequence[Sequence[int]],
                args: Sequence[int] = ()) -> ExecResult:
        """Run ``program`` over a state snapshot.

        ``fields``/``arrays`` must align with the program's field and
        array tables (the enclave runtime prepares them; see
        ``repro.core.enclave``).  Array contents are flattened by
        stride.  Returns an :class:`ExecResult`; raises
        :class:`InterpreterFault` on any safety violation.
        """
        if self.telemetry is not None:
            return self._execute_instrumented(program, fields, arrays,
                                              args)
        if self.dispatch == "fast":
            return self._execute_fast(self, program, fields, arrays,
                                      args)
        if self.dispatch == "tree":
            return self.execute_tree(program, fields, arrays, args)
        return self._backend.execute(self, program, fields, arrays,
                                     args)

    def execute_batch(self, program: Program,
                      snapshots: Sequence[Tuple[Sequence[int],
                                                Sequence[Sequence[int]]]],
                      args: Sequence[int] = ()) -> List[object]:
        """Run ``program`` over a batch of state snapshots.

        The batched twin of :meth:`execute`: ``snapshots`` is a
        sequence of ``(fields, arrays)`` pairs and the result is a
        list, in order, of :class:`ExecResult` or — because batches
        must isolate faults per packet, exactly as the enclave does —
        the :class:`InterpreterFault` that invocation raised.

        Each entry is bit-for-bit identical to calling :meth:`execute`
        on the same interpreter with the same snapshot in the same
        order (shared RNG state included); the per-call dispatch
        overhead is paid once per batch, not once per snapshot.
        """
        if self.telemetry is not None:
            return self._execute_batch_instrumented(program, snapshots,
                                                    args)
        return self._execute_batch_impl(program, snapshots, args)

    def _execute_batch_impl(self, program: Program, snapshots,
                            args: Sequence[int]) -> List[object]:
        if self.dispatch == "fast":
            from .fastdispatch import execute_fast_batch
            return execute_fast_batch(self, program, snapshots, args)
        if self.dispatch == "tree":
            out: List[object] = []
            for fields, arrays in snapshots:
                try:
                    out.append(self.execute_tree(program, fields,
                                                 arrays, args))
                except InterpreterFault as fault:
                    out.append(fault)
            return out
        return self._backend.execute_batch(self, program, snapshots,
                                           args)

    def _execute_batch_instrumented(self, program: Program, snapshots,
                                    args: Sequence[int]) -> List[object]:
        """One span per batch; boundary counters per invocation."""
        with self.telemetry.tracer.span(
                "interpreter.execute_batch", program=program.name,
                dispatch=self.dispatch) as span:
            results = self._execute_batch_impl(program, snapshots,
                                               args)
            faults = 0
            for res in results:
                self._m_invocations.inc()
                if isinstance(res, InterpreterFault):
                    faults += 1
                    self._m_faults.inc()
                else:
                    self._h_ops.observe(res.stats.ops_executed)
                    self._h_stack.observe(res.stats.max_operand_stack)
            span.set(size=len(results), faults=faults)
        return results

    def _execute_instrumented(self, program: Program,
                              fields: Sequence[int],
                              arrays: Sequence[Sequence[int]],
                              args: Sequence[int]) -> ExecResult:
        """:meth:`execute` wrapped in a span plus boundary metrics."""
        with self.telemetry.tracer.span(
                "interpreter.execute", program=program.name,
                dispatch=self.dispatch) as span:
            self._m_invocations.inc()
            try:
                if self.dispatch == "fast":
                    result = self._execute_fast(self, program, fields,
                                                arrays, args)
                elif self.dispatch == "tree":
                    result = self.execute_tree(program, fields, arrays,
                                               args)
                else:
                    result = self._backend.execute(self, program,
                                                   fields, arrays,
                                                   args)
            except InterpreterFault as fault:
                self._m_faults.inc()
                span.set(fault=fault.reason)
                raise
            stats = result.stats
            self._h_ops.observe(stats.ops_executed)
            self._h_stack.observe(stats.max_operand_stack)
            span.set(ops=stats.ops_executed)
        return result

    def execute_tree(self, program: Program,
                     fields: Sequence[int],
                     arrays: Sequence[Sequence[int]],
                     args: Sequence[int] = ()) -> ExecResult:
        """The original decode-per-op loop (the "slow path")."""
        field_file, heap, bases, lengths, writable_ranges = _copy_in(
            program, fields, arrays, self.max_heap_words)

        stats = ExecStats(heap_words=len(heap))
        entry = program.entry
        frame = _Frame(0, self._make_locals(entry.n_locals, args),
                       return_pc=-1)
        frames: List[_Frame] = [frame]
        stats.max_call_depth = 1
        pc = 0
        code = entry.code
        budget = self.op_budget
        clock_value: Optional[int] = None
        # Operand-stack words held by frames *other than* the current
        # one; total depth = outer_depth + len(frame.stack).
        outer_depth = 0

        while True:
            if pc >= len(code):
                raise InterpreterFault("fell off end of code",
                                       program.name, pc)
            instr = code[pc]
            op = instr.op
            stack = frame.stack
            stats.ops_executed += 1
            if budget is not None and stats.ops_executed > budget:
                raise InterpreterFault(
                    f"op budget of {budget} exceeded",
                    program.name, pc)

            try:
                if op is Op.CONST:
                    stack.append(wrap64(instr.arg))
                elif op is Op.LOAD:
                    stack.append(frame.locals[instr.arg])
                elif op is Op.STORE:
                    frame.locals[instr.arg] = stack.pop()
                elif op is Op.POP:
                    stack.pop()
                elif op is Op.DUP:
                    stack.append(stack[-1])
                elif op is Op.SWAP:
                    stack[-1], stack[-2] = stack[-2], stack[-1]
                elif op is Op.ADD:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] + rhs)
                elif op is Op.SUB:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] - rhs)
                elif op is Op.MUL:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] * rhs)
                elif op is Op.DIV:
                    rhs = stack.pop()
                    if rhs == 0:
                        raise InterpreterFault("division by zero",
                                               program.name, pc)
                    stack[-1] = wrap64(stack[-1] // rhs)
                elif op is Op.MOD:
                    rhs = stack.pop()
                    if rhs == 0:
                        raise InterpreterFault("modulo by zero",
                                               program.name, pc)
                    stack[-1] = wrap64(stack[-1] % rhs)
                elif op is Op.NEG:
                    stack[-1] = wrap64(-stack[-1])
                elif op is Op.BAND:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] & rhs)
                elif op is Op.BOR:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] | rhs)
                elif op is Op.BXOR:
                    rhs = stack.pop()
                    stack[-1] = wrap64(stack[-1] ^ rhs)
                elif op is Op.BNOT:
                    stack[-1] = wrap64(~stack[-1])
                elif op is Op.SHL:
                    rhs = stack.pop()
                    if not 0 <= rhs < 64:
                        raise InterpreterFault(
                            f"shift amount {rhs} out of range",
                            program.name, pc)
                    stack[-1] = wrap64(stack[-1] << rhs)
                elif op is Op.SHR:
                    rhs = stack.pop()
                    if not 0 <= rhs < 64:
                        raise InterpreterFault(
                            f"shift amount {rhs} out of range",
                            program.name, pc)
                    stack[-1] = wrap64(stack[-1] >> rhs)
                elif op is Op.CEQ:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] == rhs else 0
                elif op is Op.CNE:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] != rhs else 0
                elif op is Op.CLT:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] < rhs else 0
                elif op is Op.CLE:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] <= rhs else 0
                elif op is Op.CGT:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] > rhs else 0
                elif op is Op.CGE:
                    rhs = stack.pop()
                    stack[-1] = 1 if stack[-1] >= rhs else 0
                elif op is Op.NOTL:
                    stack[-1] = 1 if stack[-1] == 0 else 0
                elif op is Op.JMP:
                    pc = instr.arg
                    continue
                elif op is Op.JZ:
                    if stack.pop() == 0:
                        pc = instr.arg
                        continue
                elif op is Op.JNZ:
                    if stack.pop() != 0:
                        pc = instr.arg
                        continue
                elif op is Op.GETF:
                    stack.append(field_file[instr.arg])
                elif op is Op.PUTF:
                    ref = program.field_table[instr.arg]
                    if not ref.writable:
                        raise InterpreterFault(
                            f"write to read-only field "
                            f"{ref.scope}.{ref.name}",
                            program.name, pc)
                    field_file[instr.arg] = stack.pop()
                elif op is Op.ABASE:
                    stack.append(bases[instr.arg])
                elif op is Op.ALEN:
                    stack.append(lengths[instr.arg])
                elif op is Op.HLOAD:
                    addr = stack.pop()
                    if not 0 <= addr < len(heap):
                        raise InterpreterFault(
                            f"heap read at {addr} out of bounds "
                            f"(heap has {len(heap)} words)",
                            program.name, pc)
                    stack.append(heap[addr])
                elif op is Op.HSTORE:
                    addr = stack.pop()
                    value = stack.pop()
                    if not any(lo <= addr < hi
                               for lo, hi in writable_ranges):
                        raise InterpreterFault(
                            f"heap write at {addr} outside writable "
                            f"regions", program.name, pc)
                    heap[addr] = value
                elif op is Op.CALL:
                    callee = program.functions[instr.arg]
                    if len(frames) >= self.max_call_depth:
                        raise InterpreterFault(
                            f"call depth exceeds "
                            f"{self.max_call_depth}",
                            program.name, pc)
                    if len(stack) < callee.n_args:
                        raise InterpreterFault(
                            "operand stack underflow at call",
                            program.name, pc)
                    new_locals = self._make_locals(
                        callee.n_locals,
                        stack[len(stack) - callee.n_args:])
                    del stack[len(stack) - callee.n_args:]
                    outer_depth += len(stack)
                    frame = _Frame(instr.arg, new_locals,
                                   return_pc=pc + 1)
                    frames.append(frame)
                    stats.max_call_depth = max(stats.max_call_depth,
                                               len(frames))
                    code = callee.code
                    pc = 0
                    continue
                elif op is Op.RET:
                    result = stack.pop() if stack else 0
                    frames.pop()
                    if not frames:
                        return _finish(
                            program, result, field_file, heap,
                            bases, lengths, stats)
                    return_pc = frame.return_pc
                    frame = frames[-1]
                    frame.stack.append(result)
                    outer_depth -= len(frame.stack) - 1
                    code = program.functions[frame.func_index].code
                    pc = return_pc
                    continue
                elif op is Op.RAND:
                    bound = stack.pop()
                    if bound <= 0:
                        raise InterpreterFault(
                            f"rand bound {bound} must be positive",
                            program.name, pc)
                    stack.append(self.rng.randrange(bound))
                elif op is Op.CLOCK:
                    if clock_value is None:
                        clock_value = wrap64(self.clock())
                    stack.append(clock_value)
                elif op is Op.HALT:
                    result = stack.pop() if stack else 0
                    return _finish(program, result, field_file,
                                   heap, bases, lengths, stats)
                else:
                    raise InterpreterFault(
                        f"unknown opcode {op!r}", program.name, pc)
            except IndexError:
                raise InterpreterFault(
                    "operand stack underflow", program.name, pc
                ) from None
            pc += 1
            depth = outer_depth + len(frame.stack)
            if depth > stats.max_operand_stack:
                stats.max_operand_stack = depth
                if depth > self.max_operand_stack:
                    raise InterpreterFault(
                        f"operand stack of {depth} words exceeds "
                        f"limit {self.max_operand_stack}",
                        program.name, pc)

    # -- helpers ----------------------------------------------------------

    def _make_locals(self, n_locals: int,
                     args: Sequence[int]) -> List[int]:
        return _make_locals(n_locals, args)

    def _finish(self, program: Program, result: int,
                field_file: List[int], heap: List[int],
                bases: List[int], lengths: List[int],
                stats: ExecStats) -> ExecResult:
        return _finish(program, result, field_file, heap, bases,
                       lengths, stats)

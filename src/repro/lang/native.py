"""Native backend: compile the typed AST to a Python closure.

The paper evaluates Eden against a "native" implementation — the same
function hard-coded inside the enclave instead of interpreted
(Section 5.1).  This module is that baseline: it generates Python source
from the exact same typed AST the bytecode compiler consumes, so both
backends implement identical semantics (a property the test suite
checks exhaustively), but execution skips the bytecode interpreter.

The generated function takes the same invocation inputs as
:meth:`repro.lang.interpreter.Interpreter.execute` — a scalar field file
and flattened arrays — so the enclave can swap backends per match-action
rule without changing anything else.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from . import ast_nodes as T
from .bytecode import Program, wrap64
from .interpreter import ExecResult, ExecStats, InterpreterFault


class NativeFault(InterpreterFault):
    """The native function faulted (same contract as interpreter faults)."""


def _aget(arr: List[int], idx: int, name: str) -> int:
    if not 0 <= idx < len(arr):
        raise NativeFault(
            f"array read at {idx} out of bounds for {name} "
            f"(length {len(arr)})")
    return arr[idx]


def _aset(arr: List[int], idx: int, value: int, name: str) -> None:
    if not 0 <= idx < len(arr):
        raise NativeFault(
            f"array write at {idx} out of bounds for {name} "
            f"(length {len(arr)})")
    arr[idx] = value


def _div(a: int, b: int) -> int:
    if b == 0:
        raise NativeFault("division by zero")
    return wrap64(a // b)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise NativeFault("modulo by zero")
    return wrap64(a % b)


def _shl(a: int, b: int) -> int:
    if not 0 <= b < 64:
        raise NativeFault(f"shift amount {b} out of range")
    return wrap64(a << b)


def _shr(a: int, b: int) -> int:
    if not 0 <= b < 64:
        raise NativeFault(f"shift amount {b} out of range")
    return wrap64(a >> b)


def _rand(rng: random.Random, bound: int) -> int:
    if bound <= 0:
        raise NativeFault(f"rand bound {bound} must be positive")
    return rng.randrange(bound)


class _CodeGen:
    """Generates the Python source of one compiled program."""

    _BINOP_FMT = {
        "+": "_w({lhs} + {rhs})",
        "-": "_w({lhs} - {rhs})",
        "*": "_w({lhs} * {rhs})",
        "//": "_div({lhs}, {rhs})",
        "%": "_mod({lhs}, {rhs})",
        "&": "_w({lhs} & {rhs})",
        "|": "_w({lhs} | {rhs})",
        "^": "_w({lhs} ^ {rhs})",
        "<<": "_shl({lhs}, {rhs})",
        ">>": "_shr({lhs}, {rhs})",
    }

    def __init__(self, prog: T.ProgramAST) -> None:
        self.prog = prog
        self.lines: List[str] = []
        self._indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self._indent + line)

    def generate(self) -> str:
        self.emit("def __entry__(F, A, _rng, _clock):")
        self._indent += 1
        self.emit("_clk = [None]")
        for fn in reversed(self.prog.functions[1:]):
            self._gen_function(fn)
        for stmt in self.prog.functions[0].body:
            self._gen_stmt(stmt)
        self.emit("return 0")
        self._indent -= 1
        return "\n".join(self.lines)

    def _gen_function(self, fn: T.FunctionDef) -> None:
        params = ", ".join(f"_l{i}" for i in range(len(fn.params)))
        self.emit(f"def _fn_{fn.name}({params}):")
        self._indent += 1
        body = list(fn.body)
        if not body:
            body = [T.Return(T.Const(0))]
        for stmt in body:
            self._gen_stmt(stmt)
        self.emit("return 0")
        self._indent -= 1

    # -- statements -----------------------------------------------------

    def _gen_stmt(self, stmt: T.Stmt) -> None:
        if isinstance(stmt, T.AssignLocal):
            self.emit(f"_l{stmt.slot} = {self._gen_expr(stmt.value)}")
        elif isinstance(stmt, T.AssignState):
            self.emit(f"F[{stmt.index}] = "
                      f"_w({self._gen_expr(stmt.value)})")
        elif isinstance(stmt, T.AssignArray):
            addr = self._element_addr(stmt)
            self.emit(f"_aset(A[{stmt.array_index}], {addr}, "
                      f"_w({self._gen_expr(stmt.value)}), "
                      f"{stmt.name!r})")
        elif isinstance(stmt, T.If):
            self.emit(f"if {self._gen_expr(stmt.cond)} != 0:")
            self._indent += 1
            self._gen_block(stmt.then)
            self._indent -= 1
            if stmt.orelse:
                self.emit("else:")
                self._indent += 1
                self._gen_block(stmt.orelse)
                self._indent -= 1
        elif isinstance(stmt, T.While):
            self.emit(f"while {self._gen_expr(stmt.cond)} != 0:")
            self._indent += 1
            self._gen_block(stmt.body)
            self._indent -= 1
        elif isinstance(stmt, T.Break):
            self.emit("break")
        elif isinstance(stmt, T.Continue):
            self.emit("continue")
        elif isinstance(stmt, T.Return):
            if stmt.value is None:
                self.emit("return 0")
            else:
                self.emit(f"return {self._gen_expr(stmt.value)}")
        elif isinstance(stmt, T.ExprStmt):
            self.emit(f"_ = {self._gen_expr(stmt.value)}")
        elif isinstance(stmt, T.Pass):
            self.emit("pass")
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    def _gen_block(self, stmts) -> None:
        if not stmts:
            self.emit("pass")
            return
        for stmt in stmts:
            self._gen_stmt(stmt)

    # -- expressions ------------------------------------------------------

    def _gen_expr(self, expr: T.Expr) -> str:
        if isinstance(expr, T.Const):
            return repr(wrap64(expr.value))
        if isinstance(expr, T.LocalRef):
            return f"_l{expr.slot}"
        if isinstance(expr, T.StateRef):
            return f"F[{expr.index}]"
        if isinstance(expr, T.ArrayLen):
            stride = self.prog.array_table[expr.array_index].stride
            if stride == 1:
                return f"len(A[{expr.array_index}])"
            return f"(len(A[{expr.array_index}]) // {stride})"
        if isinstance(expr, T.ArrayIndex):
            addr = self._element_addr(expr)
            return (f"_aget(A[{expr.array_index}], {addr}, "
                    f"{expr.name!r})")
        if isinstance(expr, T.BinOp):
            return self._BINOP_FMT[expr.op].format(
                lhs=self._gen_expr(expr.lhs),
                rhs=self._gen_expr(expr.rhs))
        if isinstance(expr, T.UnaryOp):
            operand = self._gen_expr(expr.operand)
            if expr.op == "-":
                return f"_w(-({operand}))"
            if expr.op == "~":
                return f"_w(~({operand}))"
            if expr.op == "not":
                return f"(1 if ({operand}) == 0 else 0)"
            raise TypeError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, T.Compare):
            return (f"(1 if ({self._gen_expr(expr.lhs)}) {expr.op} "
                    f"({self._gen_expr(expr.rhs)}) else 0)")
        if isinstance(expr, T.BoolOp):
            joiner = " and " if expr.op == "and" else " or "
            parts = [f"({self._gen_expr(op)}) != 0"
                     for op in expr.operands]
            return f"(1 if ({joiner.join(parts)}) else 0)"
        if isinstance(expr, T.IfExp):
            return (f"(({self._gen_expr(expr.then)}) if "
                    f"({self._gen_expr(expr.cond)}) != 0 else "
                    f"({self._gen_expr(expr.orelse)}))")
        if isinstance(expr, T.Call):
            callee = self.prog.functions[expr.func_index]
            args = ", ".join(self._gen_expr(a) for a in expr.args)
            return f"_fn_{callee.name}({args})"
        if isinstance(expr, T.Builtin):
            if expr.name == "rand":
                return f"_rand(_rng, {self._gen_expr(expr.args[0])})"
            if expr.name == "clock":
                # Like the interpreter, the clock is sampled once per
                # invocation.
                return ("(_clk[0] if _clk[0] is not None else "
                        "_clk.__setitem__(0, _w(_clock())) or _clk[0])")
            raise TypeError(f"unknown builtin {expr.name!r}")
        raise TypeError(f"unknown expression {expr!r}")

    def _element_addr(self, node) -> str:
        index = self._gen_expr(node.index)
        if node.stride == 1 and node.offset == 0:
            return f"({index})"
        if node.offset == 0:
            return f"(({index}) * {node.stride})"
        return f"(({index}) * {node.stride} + {node.offset})"


class NativeFunction:
    """A natively compiled action function.

    Drop-in execution-compatible with the bytecode interpreter:
    :meth:`execute` takes the same snapshot inputs and returns the same
    :class:`ExecResult`.
    """

    def __init__(self, prog_ast: T.ProgramAST, program: Program,
                 rng: Optional[random.Random] = None,
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.prog_ast = prog_ast
        self.program = program
        self.rng = rng if rng is not None else random.Random(0)
        self.clock = clock if clock is not None else (lambda: 0)
        self.python_source = _CodeGen(prog_ast).generate()
        namespace = {
            "_w": wrap64, "_div": _div, "_mod": _mod, "_shl": _shl,
            "_shr": _shr, "_aget": _aget, "_aset": _aset,
            "_rand": _rand,
        }
        exec(compile(self.python_source, f"<native:{prog_ast.name}>",
                     "exec"), namespace)
        self._fn = namespace["__entry__"]

    def execute(self, fields: Sequence[int],
                arrays: Sequence[Sequence[int]],
                args: Sequence[int] = ()) -> ExecResult:
        """Run the native function over a state snapshot."""
        if args:
            raise NativeFault(
                "native entry points take no positional arguments")
        field_file = [wrap64(v) for v in fields]
        heap_arrays = [list(map(wrap64, a)) for a in arrays]
        try:
            value = self._fn(field_file, heap_arrays, self.rng,
                             self.clock)
        except NativeFault:
            raise
        except RecursionError:
            raise NativeFault("call depth exceeded") from None
        return ExecResult(value=wrap64(value), fields=field_file,
                          arrays=heap_arrays, stats=ExecStats())

"""Static safety verification of compiled action-function bytecode.

The paper relies on the interpreter for isolation ("we do rely on
correct execution of the interpreter ... it is easier to guarantee the
correct execution of the interpreter than to verify every possible
action function", Section 3.4.3).  We keep that runtime enforcement and
*additionally* verify programs when the controller installs them, so
obviously malformed bytecode is rejected before it ever reaches the
data path:

* every jump lands inside the function;
* every field/array/function index is within its table;
* writes (PUTF) only target writable fields;
* the operand stack is consistent: the same depth at every program
  point regardless of path, no underflow, and a finite maximum.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .bytecode import (Op, OPS_WITH_ARG, Program, STACK_EFFECT,
                       FunctionCode)


class VerificationError(Exception):
    """The program failed static verification and must not be installed."""

    def __init__(self, program: str, function: str, pc: int,
                 reason: str) -> None:
        self.program = program
        self.function = function
        self.pc = pc
        self.reason = reason
        super().__init__(f"{program}/{function}@{pc}: {reason}")


_TERMINAL = (Op.RET, Op.HALT, Op.JMP)


def verify(program: Program,
           max_operand_stack: Optional[int] = None) -> int:
    """Verify all functions of ``program``.

    Returns the maximum single-frame operand-stack depth across the
    program's functions.  Raises :class:`VerificationError` on any
    violation.
    """
    max_depth = 0
    for fn in program.functions:
        max_depth = max(max_depth, _verify_function(program, fn))
    if max_operand_stack is not None and max_depth > max_operand_stack:
        raise VerificationError(
            program.name, program.entry.name, 0,
            f"worst-case frame stack depth {max_depth} exceeds limit "
            f"{max_operand_stack}")
    return max_depth


def _verify_function(program: Program, fn: FunctionCode) -> int:
    code = fn.code
    if not code:
        raise VerificationError(program.name, fn.name, 0,
                                "empty function body")
    _check_structure(program, fn)
    return _check_stack_discipline(program, fn)


def _check_structure(program: Program, fn: FunctionCode) -> None:
    n = len(fn.code)
    for pc, instr in enumerate(fn.code):
        op = instr.op
        if op in OPS_WITH_ARG and instr.arg is None:
            raise VerificationError(program.name, fn.name, pc,
                                    f"{op.name} missing argument")
        if op in (Op.JMP, Op.JZ, Op.JNZ):
            if not 0 <= instr.arg < n:
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"jump target {instr.arg} outside [0, {n})")
        elif op in (Op.GETF, Op.PUTF):
            if not 0 <= instr.arg < len(program.field_table):
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"field index {instr.arg} outside field table")
            if op is Op.PUTF and \
                    not program.field_table[instr.arg].writable:
                ref = program.field_table[instr.arg]
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"write to read-only field {ref.scope}.{ref.name}")
        elif op in (Op.ABASE, Op.ALEN):
            if not 0 <= instr.arg < len(program.array_table):
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"array index {instr.arg} outside array table")
        elif op is Op.CALL:
            if not 0 <= instr.arg < len(program.functions):
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"call target {instr.arg} outside function table")
        elif op in (Op.LOAD, Op.STORE):
            if not 0 <= instr.arg < fn.n_locals:
                raise VerificationError(
                    program.name, fn.name, pc,
                    f"local slot {instr.arg} outside frame of "
                    f"{fn.n_locals}")


def _check_stack_discipline(program: Program,
                            fn: FunctionCode) -> int:
    """Abstract interpretation of operand-stack depth.

    Every reachable pc must see a single, consistent stack depth; the
    depth may never go negative, and reachable fall-through past the
    last instruction is an error.
    """
    code = fn.code
    n = len(code)
    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    max_depth = 0

    while worklist:
        pc = worklist.pop()
        depth = depth_at[pc]
        instr = code[pc]
        op = instr.op

        if op is Op.CALL:
            callee = program.functions[instr.arg]
            pops, pushes = callee.n_args, 1
        elif op is Op.RET:
            if depth < 1:
                raise VerificationError(
                    program.name, fn.name, pc,
                    "RET with empty operand stack")
            continue
        elif op is Op.HALT:
            continue
        else:
            pops, pushes = STACK_EFFECT[op]

        if depth < pops:
            raise VerificationError(
                program.name, fn.name, pc,
                f"operand stack underflow: depth {depth}, "
                f"{op.name} pops {pops}")
        new_depth = depth - pops + pushes
        max_depth = max(max_depth, new_depth)

        successors: List[int] = []
        if op is Op.JMP:
            successors = [instr.arg]
        elif op in (Op.JZ, Op.JNZ):
            successors = [instr.arg, pc + 1]
        else:
            successors = [pc + 1]

        for succ in successors:
            if succ >= n:
                raise VerificationError(
                    program.name, fn.name, pc,
                    "control flow can fall off the end of the code")
            if succ in depth_at:
                if depth_at[succ] != new_depth:
                    raise VerificationError(
                        program.name, fn.name, succ,
                        f"inconsistent stack depth at merge point: "
                        f"{depth_at[succ]} vs {new_depth}")
            else:
                depth_at[succ] = new_depth
                worklist.append(succ)
    return max_depth

"""Compiler from the typed action-function AST to enclave bytecode.

Mirrors Section 3.4.4 of the paper: the interesting work — resolving
state dependencies, access control and heap layout — already happened in
the frontend; "the rest of the compilation process, mainly the
translation of the abstract syntax tree to bytecode, is more
straightforward".  As in the paper, the compiler "performs a number of
optimizations such as recognizing tail recursion and compiling it as a
loop".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from . import ast_nodes as T
from .annotations import Schema
from .bytecode import Assembler, FunctionCode, Op, Program
from .dsl import lower


class CompileError(Exception):
    """The typed AST could not be translated to bytecode."""


@dataclass
class _LoopLabels:
    continue_label: str
    break_label: str


class _FunctionCompiler:
    """Compiles one :class:`~.ast_nodes.FunctionDef` to bytecode."""

    def __init__(self, prog: T.ProgramAST, fn: T.FunctionDef,
                 fn_index: int, optimize_tail_calls: bool) -> None:
        self.prog = prog
        self.fn = fn
        self.fn_index = fn_index
        self.optimize_tail_calls = optimize_tail_calls
        self.asm = Assembler(fn.name, n_args=len(fn.params))
        self._loops: List[_LoopLabels] = []

    def compile(self) -> FunctionCode:
        self._compile_block(self.fn.body)
        # Falling off the end returns 0.
        self.asm.emit(Op.CONST, 0)
        self.asm.emit(Op.RET)
        return self.asm.finish(n_locals=self.fn.n_locals)

    # -- statements -----------------------------------------------------

    def _compile_block(self, stmts: Tuple[T.Stmt, ...]) -> None:
        for stmt in stmts:
            self._compile_stmt(stmt)

    def _compile_stmt(self, stmt: T.Stmt) -> None:
        if isinstance(stmt, T.AssignLocal):
            self._compile_expr(stmt.value)
            self.asm.emit(Op.STORE, stmt.slot)
        elif isinstance(stmt, T.AssignState):
            self._compile_expr(stmt.value)
            self.asm.emit(Op.PUTF, stmt.index)
        elif isinstance(stmt, T.AssignArray):
            self._compile_expr(stmt.value)
            self._compile_element_address(stmt)
            self.asm.emit(Op.HSTORE)
        elif isinstance(stmt, T.If):
            self._compile_if(stmt)
        elif isinstance(stmt, T.While):
            self._compile_while(stmt)
        elif isinstance(stmt, T.Break):
            if not self._loops:
                raise CompileError("break outside loop")
            self.asm.emit_jump(Op.JMP, self._loops[-1].break_label)
        elif isinstance(stmt, T.Continue):
            if not self._loops:
                raise CompileError("continue outside loop")
            self.asm.emit_jump(Op.JMP, self._loops[-1].continue_label)
        elif isinstance(stmt, T.Return):
            self._compile_return(stmt)
        elif isinstance(stmt, T.ExprStmt):
            self._compile_expr(stmt.value)
            self.asm.emit(Op.POP)
        elif isinstance(stmt, T.Pass):
            pass
        else:
            raise CompileError(f"unknown statement {stmt!r}")

    def _compile_if(self, stmt: T.If) -> None:
        else_label = self.asm.new_label()
        end_label = self.asm.new_label()
        self._compile_expr(stmt.cond)
        self.asm.emit_jump(Op.JZ, else_label)
        self._compile_block(stmt.then)
        if stmt.orelse:
            self.asm.emit_jump(Op.JMP, end_label)
            self.asm.bind(else_label)
            self._compile_block(stmt.orelse)
            self.asm.bind(end_label)
        else:
            self.asm.bind(else_label)

    def _compile_while(self, stmt: T.While) -> None:
        top = self.asm.new_label()
        end = self.asm.new_label()
        self.asm.bind(top)
        self._compile_expr(stmt.cond)
        self.asm.emit_jump(Op.JZ, end)
        self._loops.append(_LoopLabels(continue_label=top,
                                       break_label=end))
        self._compile_block(stmt.body)
        self._loops.pop()
        self.asm.emit_jump(Op.JMP, top)
        self.asm.bind(end)

    def _compile_return(self, stmt: T.Return) -> None:
        value = stmt.value
        if (self.optimize_tail_calls and isinstance(value, T.Call)
                and value.func_index == self.fn_index):
            # Tail recursion -> loop: evaluate all arguments, store them
            # into the parameter slots, and jump back to the top.
            for arg in value.args:
                self._compile_expr(arg)
            for slot in reversed(range(len(value.args))):
                self.asm.emit(Op.STORE, slot)
            self.asm.emit_jump(Op.JMP, "__entry")
            return
        if value is None:
            self.asm.emit(Op.CONST, 0)
        else:
            self._compile_expr(value)
        self.asm.emit(Op.RET)

    # -- expressions ------------------------------------------------------

    _BINOP_OPS = {
        "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "//": Op.DIV,
        "%": Op.MOD, "&": Op.BAND, "|": Op.BOR, "^": Op.BXOR,
        "<<": Op.SHL, ">>": Op.SHR,
    }
    _CMP_OPS = {
        "==": Op.CEQ, "!=": Op.CNE, "<": Op.CLT, "<=": Op.CLE,
        ">": Op.CGT, ">=": Op.CGE,
    }

    def _compile_expr(self, expr: T.Expr) -> None:
        if isinstance(expr, T.Const):
            self.asm.emit(Op.CONST, expr.value)
        elif isinstance(expr, T.LocalRef):
            self.asm.emit(Op.LOAD, expr.slot)
        elif isinstance(expr, T.StateRef):
            self.asm.emit(Op.GETF, expr.index)
        elif isinstance(expr, T.ArrayLen):
            self.asm.emit(Op.ALEN, expr.array_index)
        elif isinstance(expr, T.ArrayIndex):
            self._compile_element_address(expr)
            self.asm.emit(Op.HLOAD)
        elif isinstance(expr, T.BinOp):
            self._compile_expr(expr.lhs)
            self._compile_expr(expr.rhs)
            self.asm.emit(self._BINOP_OPS[expr.op])
        elif isinstance(expr, T.UnaryOp):
            self._compile_expr(expr.operand)
            if expr.op == "-":
                self.asm.emit(Op.NEG)
            elif expr.op == "~":
                self.asm.emit(Op.BNOT)
            elif expr.op == "not":
                self.asm.emit(Op.NOTL)
            else:
                raise CompileError(f"unknown unary op {expr.op!r}")
        elif isinstance(expr, T.Compare):
            self._compile_expr(expr.lhs)
            self._compile_expr(expr.rhs)
            self.asm.emit(self._CMP_OPS[expr.op])
        elif isinstance(expr, T.BoolOp):
            self._compile_boolop(expr)
        elif isinstance(expr, T.IfExp):
            else_label = self.asm.new_label()
            end_label = self.asm.new_label()
            self._compile_expr(expr.cond)
            self.asm.emit_jump(Op.JZ, else_label)
            self._compile_expr(expr.then)
            self.asm.emit_jump(Op.JMP, end_label)
            self.asm.bind(else_label)
            self._compile_expr(expr.orelse)
            self.asm.bind(end_label)
        elif isinstance(expr, T.Call):
            for arg in expr.args:
                self._compile_expr(arg)
            self.asm.emit(Op.CALL, expr.func_index)
        elif isinstance(expr, T.Builtin):
            for arg in expr.args:
                self._compile_expr(arg)
            if expr.name == "rand":
                self.asm.emit(Op.RAND)
            elif expr.name == "clock":
                self.asm.emit(Op.CLOCK)
            else:
                raise CompileError(f"unknown builtin {expr.name!r}")
        else:
            raise CompileError(f"unknown expression {expr!r}")

    def _compile_boolop(self, expr: T.BoolOp) -> None:
        """Short-circuit and/or, normalized to 1/0."""
        short_label = self.asm.new_label()
        end_label = self.asm.new_label()
        short_op = Op.JZ if expr.op == "and" else Op.JNZ
        for operand in expr.operands:
            self._compile_expr(operand)
            self.asm.emit_jump(short_op, short_label)
        self.asm.emit(Op.CONST, 1 if expr.op == "and" else 0)
        self.asm.emit_jump(Op.JMP, end_label)
        self.asm.bind(short_label)
        self.asm.emit(Op.CONST, 0 if expr.op == "and" else 1)
        self.asm.bind(end_label)

    def _compile_element_address(
            self, node: Union[T.ArrayIndex, T.AssignArray]) -> None:
        """Push the heap address of ``arr[index]`` (+ record offset)."""
        self.asm.emit(Op.ABASE, node.array_index)
        self._compile_expr(node.index)
        if node.stride != 1:
            self.asm.emit(Op.CONST, node.stride)
            self.asm.emit(Op.MUL)
        self.asm.emit(Op.ADD)
        if node.offset:
            self.asm.emit(Op.CONST, node.offset)
            self.asm.emit(Op.ADD)


def compile_ast(prog: T.ProgramAST,
                optimize_tail_calls: bool = True,
                peephole: bool = True) -> Program:
    """Compile a typed AST into an executable :class:`Program`.

    ``peephole`` additionally runs the post-pass of
    :mod:`repro.lang.optimizer` (constant folding, jump threading,
    dead-code elimination).
    """
    functions: List[FunctionCode] = []
    for index, fn in enumerate(prog.functions):
        fc = _FunctionCompiler(prog, fn, index, optimize_tail_calls)
        fc.asm.bind("__entry")
        functions.append(fc.compile())
    program = Program(
        name=prog.name,
        functions=tuple(functions),
        field_table=prog.field_table,
        array_table=prog.array_table,
        source=prog.source,
    )
    if peephole:
        from .optimizer import optimize_program
        program = optimize_program(program)
    return program


def compile_action(fn: Union[Callable, str],
                   packet_schema: Optional[Schema] = None,
                   message_schema: Optional[Schema] = None,
                   global_schema: Optional[Schema] = None,
                   name: Optional[str] = None,
                   optimize_tail_calls: bool = True,
                   peephole: bool = True
                   ) -> Tuple[T.ProgramAST, Program]:
    """Frontend + backend in one step.

    Returns both the typed AST (consumed by the native backend and by
    concurrency analysis) and the compiled bytecode program.
    """
    prog_ast = lower(fn, packet_schema=packet_schema,
                     message_schema=message_schema,
                     global_schema=global_schema, name=name)
    program = compile_ast(prog_ast,
                          optimize_tail_calls=optimize_tail_calls,
                          peephole=peephole)
    # Side-attach the typed AST so the native backend in the registry
    # can compile this program without replumbing every call site
    # (Program is frozen; this is a cache slot, not program identity).
    object.__setattr__(program, "_prog_ast", prog_ast)
    return prog_ast, program

"""The Eden action-function language: DSL, compiler, interpreter.

Typical use::

    from repro.lang import (Field, Schema, Lifetime, AccessLevel,
                            compile_action, Interpreter, verify)

    def bump_priority(packet):
        packet.priority = min(packet.priority + 1, 7)

    ast, program = compile_action(
        bump_priority, packet_schema=DEFAULT_PACKET_SCHEMA)
    verify(program)
    result = Interpreter().execute(program, fields=[3], arrays=[])
"""

from .annotations import (AccessLevel, DEFAULT_PACKET_SCHEMA, Field,
                          FieldKind, Lifetime, Schema, SchemaError,
                          schema)
from .ast_nodes import ProgramAST
from .backends import (Backend, default_dispatch, get as get_backend,
                       invalidate as invalidate_backends,
                       names as backend_names, register
                       as register_backend)
from .bytecode import (ArrayRef, FieldRef, FunctionCode, Instr, Op,
                       Program, wrap64)
from .compiler import CompileError, compile_action, compile_ast
from .dsl import DslError, lower, quote
from .fastdispatch import compile_program as compile_fast_dispatch
from .fastdispatch import execute_fast, fast_code
from .interpreter import (ExecResult, ExecStats, Interpreter,
                          InterpreterFault)
from .native import NativeFault, NativeFunction
from .optimizer import optimize_function, optimize_program
from .pycodegen import (CodegenRunner, execute_codegen,
                        execute_codegen_batch)
from .verifier import VerificationError, verify

__all__ = [
    "AccessLevel", "ArrayRef", "Backend", "CodegenRunner",
    "CompileError", "DEFAULT_PACKET_SCHEMA",
    "DslError", "ExecResult", "ExecStats", "Field", "FieldKind",
    "FieldRef", "FunctionCode", "Instr", "Interpreter",
    "InterpreterFault", "Lifetime", "NativeFault", "NativeFunction",
    "Op", "Program", "ProgramAST", "Schema", "SchemaError",
    "VerificationError", "backend_names", "compile_action",
    "compile_ast", "compile_fast_dispatch", "default_dispatch",
    "execute_codegen", "execute_codegen_batch", "execute_fast",
    "fast_code", "get_backend", "invalidate_backends", "lower",
    "optimize_function", "optimize_program", "quote",
    "register_backend", "schema", "verify", "wrap64",
]

"""HTTP service for live latency decompositions (stdlib only).

:class:`LatencyServer` wraps a :class:`~repro.latency.store.
LatencyStore` (and optionally the :class:`~repro.latency.decompose.
LatencyCollector` feeding it) in a ``ThreadingHTTPServer``:

``GET /``
    Service index: endpoint list, packet count, collector stats.
``GET /snapshot``
    The full store snapshot as JSON (segments, flows, functions,
    closed windows).
``GET /prometheus``
    The store's registry in Prometheus text exposition format.
``GET /packets/<flow>``
    Recent raw packet records for one flow (``?limit=N``); the flow
    key is the dashed five-tuple from
    :func:`~repro.latency.decompose.flow_key`.  ``/packets`` without
    a flow returns the most recent records across flows.
``GET /stream``
    Chunked transfer encoding: one JSON line per closed window as
    windows close, starting with already-closed history
    (``?since=INDEX`` to skip).  The stream ends when the server
    shuts down or the scenario finishes flushing.

The server binds to an OS-assigned ephemeral port when ``port=0``
(the default), so tests and the CLI read :attr:`port` after
:meth:`start`.  Handler threads are daemonic, and :meth:`stop` both
shuts the listener down and pokes the store's window condition so
parked ``/stream`` handlers exit promptly — no leaked threads
(asserted by ``tests/latency/test_server.py``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from .store import LatencyStore

#: /stream handlers wake at least this often to notice a shutdown.
_STREAM_POLL_S = 0.25


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-latency/1"

    # Set per server class in LatencyServer.start().
    latency_server: "LatencyServer"

    def log_message(self, fmt: str, *args: object) -> None:
        # Quiet by default; the CLI is the user interface.
        pass

    def _send_json(self, payload: object, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, body: str, status: int = 200,
                   content_type: str = "text/plain") -> None:
        data = body.encode()
        self.send_response(status)
        self.send_header("Content-Type",
                         f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        srv = self.latency_server
        url = urlparse(self.path)
        path = url.path.rstrip("/") or "/"
        try:
            if path == "/":
                self._send_json(srv.index())
            elif path == "/snapshot":
                self._send_json(srv.store.snapshot())
            elif path == "/prometheus":
                self._send_text(srv.store.prometheus())
            elif path == "/packets" or path.startswith("/packets/"):
                flow = path[len("/packets/"):] or None
                query = parse_qs(url.query)
                limit = int(query.get("limit", ["50"])[0])
                records = srv.store.recent(flow=flow, limit=limit)
                self._send_json({"flow": flow,
                                 "records": [r.as_dict()
                                             for r in records]})
            elif path == "/stream":
                query = parse_qs(url.query)
                since = int(query.get("since", ["-1"])[0])
                self._stream(since)
            else:
                self._send_json({"error": f"no such endpoint {path}"},
                                status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream(self, since: int) -> None:
        srv = self.latency_server
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        last = since
        while True:
            windows = srv.store.wait_for_windows(
                last, timeout=_STREAM_POLL_S)
            for window in windows:
                self._chunk(json.dumps(window.as_dict(),
                                       sort_keys=True) + "\n")
                last = window.index
            if srv.stream_done(last):
                break
        self._chunk("")  # terminating zero-length chunk

    def _chunk(self, text: str) -> None:
        data = text.encode()
        self.wfile.write(f"{len(data):x}\r\n".encode())
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


class LatencyServer:
    """A stoppable HTTP front-end over one latency store."""

    def __init__(self, store: LatencyStore, collector=None,
                 host: str = "127.0.0.1", port: int = 0,
                 extra_info: Optional[Dict[str, object]] = None
                 ) -> None:
        self.store = store
        self.collector = collector
        self.host = host
        self.port = port
        self.extra_info = extra_info or {}
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._finished = threading.Event()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "LatencyServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        handler = type("_BoundHandler", (_Handler,),
                       {"latency_server": self})
        self._httpd = ThreadingHTTPServer((self.host, self.port),
                                          handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"latency-server:{self.port}", daemon=True)
        self._thread.start()
        return self

    def finish(self) -> None:
        """Mark the feeding scenario done: open windows are flushed
        and ``/stream`` handlers drain and close."""
        self.store.flush()
        self._finished.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Shut down the listener and join the serving thread."""
        self.finish()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stream_done(self, last_index: int) -> bool:
        """A ``/stream`` handler may exit once the scenario finished
        and every closed window up to the flush has been sent."""
        if not self._finished.is_set():
            return False
        newer = self.store.windows(since_index=last_index)
        return not newer

    # -- payload helpers ------------------------------------------------

    def index(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "service": "repro.latency",
            "endpoints": ["/", "/snapshot", "/prometheus",
                          "/packets/<flow>", "/stream"],
            "packets": self.store.count,
        }
        if self.collector is not None:
            info["collector"] = self.collector.stats()
        info.update(self.extra_info)
        return info

    def __repr__(self) -> str:
        state = "up" if self._httpd is not None else "down"
        return f"LatencyServer({self.url}, {state})"

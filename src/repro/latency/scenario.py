"""The ``latency-serve`` scenario: a live fig9-style workload whose
per-packet latency decompositions stream out over HTTP.

:class:`LatencyScenario` wires the whole subsystem together:

* a :class:`~repro.latency.store.LatencyStore` and
  :class:`~repro.latency.decompose.LatencyCollector`, hung on a
  :class:`repro.telemetry.Telemetry`;
* the Figure 9 flow-scheduling workload
  (:func:`repro.experiments.fig9.build_flow_scheduling`) built with
  that telemetry — so the stacks, enclaves, rate limiters, ports and
  hosts all feed the collector — plus Pulsar rate limiting on the
  background senders (``background_rate_bps``) so the
  ``ratelimiter_queue`` segment sees real queueing;
* stepped execution (:meth:`step` / :meth:`run`) so an HTTP server
  can serve live data between simulation slices, optionally paced in
  wall-clock time;
* the smoke contract (:meth:`smoke_failures`): every segment class
  present with observations, every attributable segment actually
  exercised, and the ``unattributed`` residual at most
  ``max_residual_fraction`` of the mean end-to-end delay.  CI runs
  this via ``python -m repro.cli latency-serve --once --smoke``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..experiments.fig9 import Fig9Result, build_flow_scheduling
from ..netsim.simulator import GBPS, MS
from ..telemetry import Telemetry
from .decompose import ALL_CLASSES, LatencyCollector, RESIDUAL, SEGMENTS
from .server import LatencyServer
from .store import LatencyStore


@dataclass
class ServeConfig:
    """Knobs of one latency-serve run (CLI flags map 1:1)."""

    policy: str = "pias"
    variant: str = "eden"
    seed: int = 1
    duration_ms: int = 200
    step_ms: int = 10
    load: float = 0.7
    shards: int = 0
    n_background: int = 2
    #: Aggregate Pulsar rate for the background tenant; None disables
    #: rate limiting (and empties the ratelimiter_queue segment).
    background_rate_bps: Optional[int] = 2 * GBPS
    window_ms: int = 10
    max_residual_fraction: float = 0.05
    host: str = "127.0.0.1"
    port: int = 0
    #: Wall-clock seconds to sleep between simulation steps when
    #: serving live; 0 runs the workload flat out.
    pace_s: float = 0.0


class LatencyScenario:
    """One built latency-serve workload plus its collector/store."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.store = LatencyStore(window_ns=cfg.window_ms * MS)
        self.collector = LatencyCollector(store=self.store)
        self.telemetry = Telemetry(latency=self.collector)
        self.workload = build_flow_scheduling(
            policy=cfg.policy, variant=cfg.variant, seed=cfg.seed,
            duration_ms=cfg.duration_ms, load=cfg.load,
            n_background=cfg.n_background, shards=cfg.shards,
            telemetry=self.telemetry,
            background_rate_bps=cfg.background_rate_bps)
        self._next_ns = 0
        self._finished: Optional[Fig9Result] = None

    # -- execution ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._next_ns >= self.config.duration_ms * MS

    def step(self) -> bool:
        """Advance one ``step_ms`` slice; False once the run is
        complete."""
        if self.done:
            return False
        self._next_ns = min(self._next_ns + self.config.step_ms * MS,
                            self.config.duration_ms * MS)
        self.workload.advance(self._next_ns)
        return not self.done

    def run(self, progress: Optional[Callable[["LatencyScenario"],
                                              None]] = None) -> None:
        """Run to completion, pacing by ``config.pace_s`` per step
        and calling ``progress`` after each slice."""
        while True:
            more = self.step()
            if progress is not None:
                progress(self)
            if not more:
                break
            if self.config.pace_s > 0:
                time.sleep(self.config.pace_s)

    def finish(self) -> Fig9Result:
        """Stop the workload, flush open windows, summarize FCTs."""
        if self._finished is None:
            self.workload.client.stop()
            self.store.flush()
            self._finished = self.workload.finish()
        return self._finished

    # -- serving --------------------------------------------------------

    def make_server(self) -> LatencyServer:
        cfg = self.config
        return LatencyServer(
            self.store, collector=self.collector, host=cfg.host,
            port=cfg.port,
            extra_info={"scenario": {
                "policy": cfg.policy, "variant": cfg.variant,
                "seed": cfg.seed, "duration_ms": cfg.duration_ms,
                "shards": cfg.shards, "load": cfg.load,
                "background_rate_bps": cfg.background_rate_bps,
            }})

    # -- smoke contract -------------------------------------------------

    def smoke_failures(self) -> List[str]:
        """Violations of the serve contract; empty means healthy."""
        failures: List[str] = []
        if self.collector.completed == 0:
            failures.append("no packets completed the data path")
            return failures
        for cls in ALL_CLASSES:
            if self.store.segment_histogram(cls).count == 0:
                failures.append(
                    f"segment class {cls!r} missing from the store")
        for cls in SEGMENTS:
            hist = self.store.segment_histogram(cls)
            if hist.count and hist.total == 0:
                failures.append(
                    f"segment class {cls!r} never saw a nonzero "
                    f"delay — scenario no longer exercises it")
        e2e = self.store.e2e_histogram()
        residual = self.store.segment_histogram(RESIDUAL)
        if e2e.total > 0:
            fraction = residual.total / e2e.total
            if fraction > self.config.max_residual_fraction:
                failures.append(
                    f"unattributed residual is {fraction:.1%} of the "
                    f"mean e2e delay (budget "
                    f"{self.config.max_residual_fraction:.0%})")
        return failures

    def __repr__(self) -> str:
        return (f"LatencyScenario({self.config.policy}/"
                f"{self.config.variant}, "
                f"packets={self.collector.completed})")

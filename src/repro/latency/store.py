"""Bounded in-memory timeseries store for latency decompositions.

The store is the queryable half of :mod:`repro.latency`: the
collector pushes one :class:`~repro.latency.decompose.PacketRecord`
per delivered packet, and the store maintains — all bounded, all
O(1) per record —

* run-level per-segment log2 histograms (reusing the telemetry
  :class:`~repro.telemetry.registry.Histogram`) in its own
  :class:`~repro.telemetry.registry.MetricRegistry`, so the standard
  exporters work unchanged (``/prometheus`` is one
  :func:`~repro.telemetry.exporters.prometheus_text` call away);
* tumbling windows over *simulated* time, each closed window frozen
  into an immutable :class:`WindowSummary` (what ``/stream`` emits);
* per-flow and per-function rollups (segment totals and counts),
  bounded with least-recently-updated eviction;
* a ring of recent raw records for ``/packets/<flow>`` drill-down.

Thread-safety: ``add`` and every reader take one internal lock, and
window closes notify a condition variable so an HTTP streamer can
block in :meth:`wait_for_windows` instead of polling.  The lock is
uncontended in single-threaded runs (experiments, tests) and only
ever shared between the scenario thread and server handlers in
``latency-serve``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..telemetry.exporters import prometheus_text
from ..telemetry.registry import Histogram, MetricRegistry
from .decompose import ALL_CLASSES, PacketRecord, RESIDUAL

MS = 1_000_000

#: Default tumbling-window width: 10 simulated milliseconds.
DEFAULT_WINDOW_NS = 10 * MS


class WindowSummary:
    """One closed tumbling window's aggregate, immutable once built."""

    __slots__ = ("index", "start_ns", "end_ns", "count",
                 "e2e_mean_ns", "e2e_p50_ns", "e2e_p99_ns",
                 "e2e_max_ns", "segment_mean_ns")

    def __init__(self, index: int, start_ns: int, end_ns: int,
                 count: int, e2e_mean_ns: float, e2e_p50_ns: float,
                 e2e_p99_ns: float, e2e_max_ns: int,
                 segment_mean_ns: Dict[str, float]) -> None:
        self.index = index
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.count = count
        self.e2e_mean_ns = e2e_mean_ns
        self.e2e_p50_ns = e2e_p50_ns
        self.e2e_p99_ns = e2e_p99_ns
        self.e2e_max_ns = e2e_max_ns
        self.segment_mean_ns = segment_mean_ns

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "count": self.count,
            "e2e_mean_ns": self.e2e_mean_ns,
            "e2e_p50_ns": self.e2e_p50_ns,
            "e2e_p99_ns": self.e2e_p99_ns,
            "e2e_max_ns": self.e2e_max_ns,
            "segment_mean_ns": dict(self.segment_mean_ns),
        }

    def __repr__(self) -> str:
        return (f"WindowSummary(#{self.index} n={self.count} "
                f"mean={self.e2e_mean_ns:.0f}ns)")


class _WindowAccum:
    """The open (still-filling) state of one tumbling window."""

    __slots__ = ("index", "count", "e2e_hist", "segment_totals")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.e2e_hist = Histogram("window_e2e_ns")
        self.segment_totals = {cls: 0 for cls in ALL_CLASSES}

    def add(self, record: PacketRecord) -> None:
        self.count += 1
        self.e2e_hist.observe(record.e2e_ns)
        totals = self.segment_totals
        for cls, value in record.segments.items():
            totals[cls] += value

    def freeze(self, window_ns: int) -> WindowSummary:
        hist = self.e2e_hist
        n = self.count
        return WindowSummary(
            index=self.index,
            start_ns=self.index * window_ns,
            end_ns=(self.index + 1) * window_ns,
            count=n,
            e2e_mean_ns=hist.mean,
            e2e_p50_ns=hist.quantile(0.50),
            e2e_p99_ns=hist.quantile(0.99),
            e2e_max_ns=hist.vmax if hist.vmax is not None else 0,
            segment_mean_ns={cls: (tot / n if n else 0.0)
                             for cls, tot in
                             self.segment_totals.items()})


class _Rollup:
    """Per-flow / per-function segment totals."""

    __slots__ = ("count", "e2e_total_ns", "bytes_total",
                 "segment_totals", "last_received_ns")

    def __init__(self) -> None:
        self.count = 0
        self.e2e_total_ns = 0
        self.bytes_total = 0
        self.segment_totals = {cls: 0 for cls in ALL_CLASSES}
        self.last_received_ns = 0

    def add(self, record: PacketRecord) -> None:
        self.count += 1
        self.e2e_total_ns += record.e2e_ns
        self.bytes_total += record.size_bytes
        self.last_received_ns = record.received_ns
        totals = self.segment_totals
        for cls, value in record.segments.items():
            totals[cls] += value

    def as_dict(self) -> Dict[str, object]:
        n = self.count
        return {
            "count": n,
            "bytes_total": self.bytes_total,
            "e2e_mean_ns": self.e2e_total_ns / n if n else 0.0,
            "last_received_ns": self.last_received_ns,
            "segment_mean_ns": {cls: (tot / n if n else 0.0)
                                for cls, tot in
                                self.segment_totals.items()},
        }


class LatencyStore:
    """Bounded aggregate + timeseries view over packet records."""

    def __init__(self, window_ns: int = DEFAULT_WINDOW_NS,
                 max_windows: int = 512, max_records: int = 4096,
                 max_flows: int = 1024,
                 max_functions: int = 256) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be > 0")
        self.window_ns = window_ns
        self.max_windows = max_windows
        self.max_flows = max_flows
        self.max_functions = max_functions
        self.registry = MetricRegistry()
        self._lock = threading.Lock()
        self._window_closed = threading.Condition(self._lock)
        self._records: Deque[PacketRecord] = deque(maxlen=max_records)
        self._windows: Deque[WindowSummary] = deque(maxlen=max_windows)
        # A small dict of still-open windows absorbs the bounded
        # timestamp reordering of the sharded backend (lookahead <
        # window); a window closes once a strictly newer one opens.
        self._open: Dict[int, _WindowAccum] = {}
        self._max_index = -1
        self._flows: Dict[str, _Rollup] = {}
        self._functions: Dict[str, _Rollup] = {}
        self.total_records = 0
        self.late_records = 0
        self._m_packets = self.registry.counter("latency_packets_total")
        self._m_bytes = self.registry.counter("latency_bytes_total")
        self._h_e2e = self.registry.histogram("latency_e2e_ns")
        self._h_segments = {
            cls: self.registry.histogram("latency_segment_ns",
                                         segment=cls)
            for cls in ALL_CLASSES}

    # -- ingest ---------------------------------------------------------

    def add(self, record: PacketRecord) -> None:
        with self._lock:
            self.total_records += 1
            self._m_packets.inc()
            self._m_bytes.inc(record.size_bytes)
            self._h_e2e.observe(record.e2e_ns)
            for cls, value in record.segments.items():
                self._h_segments[cls].observe(value)
            self._records.append(record)
            self._rollup(self._flows, record.flow,
                         self.max_flows).add(record)
            self._rollup(self._functions, record.function or "(none)",
                         self.max_functions).add(record)
            index = record.received_ns // self.window_ns
            accum = self._open.get(index)
            if accum is None:
                if index < self._max_index:
                    # Arrived after its window already closed (deep
                    # cross-shard reordering): keep the run-level
                    # aggregates honest, skip the window series.
                    self.late_records += 1
                    return
                accum = self._open[index] = _WindowAccum(index)
                if index > self._max_index:
                    self._max_index = index
                    self._close_older(index)
            accum.add(record)

    def _rollup(self, table: Dict[str, _Rollup], key: str,
                bound: int) -> _Rollup:
        entry = table.pop(key, None)
        if entry is None:
            entry = _Rollup()
            if len(table) >= bound:
                table.pop(next(iter(table)))
        # Re-insert so dict order is least-recently-updated first and
        # the eviction above drops the coldest key.
        table[key] = entry
        return entry

    def _close_older(self, newest_index: int) -> None:
        closed = False
        for index in sorted(self._open):
            if index >= newest_index:
                break
            self._windows.append(
                self._open.pop(index).freeze(self.window_ns))
            closed = True
        if closed:
            self._window_closed.notify_all()

    def flush(self) -> None:
        """Close every still-open window (end of run / shutdown)."""
        with self._lock:
            self._close_older(self._max_index + 1)

    # -- queries --------------------------------------------------------

    @property
    def count(self) -> int:
        return self.total_records

    def segment_histogram(self, cls: str) -> Histogram:
        return self._h_segments[cls]

    def e2e_histogram(self) -> Histogram:
        return self._h_e2e

    def mean_e2e_ns(self) -> float:
        with self._lock:
            return self._h_e2e.mean

    def windows(self, since_index: int = -1) -> List[WindowSummary]:
        """Closed windows with ``index > since_index``, oldest
        first."""
        with self._lock:
            return [w for w in self._windows if w.index > since_index]

    def wait_for_windows(self, since_index: int,
                         timeout: Optional[float] = None
                         ) -> List[WindowSummary]:
        """Block until a window newer than ``since_index`` closes;
        returns the new summaries ([] on timeout)."""
        with self._window_closed:
            out = [w for w in self._windows if w.index > since_index]
            if out:
                return out
            self._window_closed.wait(timeout)
            return [w for w in self._windows if w.index > since_index]

    def recent(self, flow: Optional[str] = None,
               limit: int = 50) -> List[PacketRecord]:
        """Most recent records (newest first), optionally one flow."""
        with self._lock:
            out: List[PacketRecord] = []
            for record in reversed(self._records):
                if flow is not None and record.flow != flow:
                    continue
                out.append(record)
                if len(out) >= limit:
                    break
            return out

    def segment_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-class run-level stats (count/mean/p50/p99/max)."""
        out: Dict[str, Dict[str, object]] = {}
        for cls in ALL_CLASSES:
            hist = self._h_segments[cls]
            out[cls] = {
                "count": hist.count,
                "total_ns": hist.total,
                "mean_ns": hist.mean,
                "p50_ns": hist.quantile(0.50),
                "p99_ns": hist.quantile(0.99),
                "max_ns": hist.vmax if hist.vmax is not None else 0,
            }
        return out

    def snapshot(self) -> Dict[str, object]:
        """The full JSON-serializable state (the ``/snapshot``
        payload)."""
        with self._lock:
            hist = self._h_e2e
            return {
                "packets": self.total_records,
                "late_records": self.late_records,
                "window_ns": self.window_ns,
                "e2e": {
                    "count": hist.count,
                    "mean_ns": hist.mean,
                    "p50_ns": hist.quantile(0.50),
                    "p99_ns": hist.quantile(0.99),
                    "max_ns": hist.vmax if hist.vmax is not None else 0,
                },
                "segments": self.segment_summary(),
                "flows": {k: v.as_dict()
                          for k, v in self._flows.items()},
                "functions": {k: v.as_dict()
                              for k, v in self._functions.items()},
                "windows": [w.as_dict() for w in self._windows],
            }

    def prometheus(self) -> str:
        """The store's registry in Prometheus text format."""
        with self._lock:
            return prometheus_text(self.registry)

    def __repr__(self) -> str:
        return (f"LatencyStore(packets={self.total_records}, "
                f"windows={len(self._windows)})")

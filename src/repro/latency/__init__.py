"""Per-packet end-to-end latency decomposition (``repro.latency``).

The observability layer that turns raw telemetry into a live,
queryable answer to "where do the milliseconds go?".  Three pieces:

* :mod:`~repro.latency.decompose` — a :class:`LatencyCollector` that
  components feed *simulated-time* events (stack emit, rate-limiter
  enqueue/release, port enqueue/transmit, host receive), correlated
  by packet id into :class:`PacketRecord` segment breakdowns whose
  segments provably sum to the observed end-to-end delay (any gap is
  an explicit ``unattributed`` residual, never silently spread).
* :mod:`~repro.latency.store` — a bounded in-memory timeseries store:
  per-segment log2 histograms, windowed summaries over simulated
  time, and per-flow / per-function rollups.
* :mod:`~repro.latency.server` — a long-running scenario server
  (``python -m repro.cli latency-serve``) streaming decompositions
  over HTTP (``/snapshot``, ``/prometheus``, ``/packets/<flow>``,
  chunked ``/stream``).

Wiring: create a collector, hang it on a :class:`repro.telemetry.
Telemetry` (``Telemetry(latency=collector)``), and pass that
telemetry to the scenario exactly as for metrics/spans — the
instrumented components (host stack, rate limiter, ports, hosts)
find it via ``telemetry.latency`` / ``sim.latency`` and report
events only when it is bound.
"""

from __future__ import annotations

from .decompose import (ALL_CLASSES, LatencyCollector, PacketRecord,
                        RESIDUAL, SEGMENTS, flow_key)
from .store import LatencyStore, WindowSummary
from .server import LatencyServer
from .scenario import LatencyScenario, ServeConfig

__all__ = [
    "SEGMENTS", "RESIDUAL", "ALL_CLASSES", "flow_key",
    "LatencyCollector", "PacketRecord",
    "LatencyStore", "WindowSummary",
    "LatencyServer",
    "LatencyScenario", "ServeConfig",
]

"""Correlating raw per-packet events into delay decompositions.

Every component on the data path reports timestamped events in
*simulated* nanoseconds, keyed by ``packet.packet_id``:

* the host stack reports the send time, the scheduled emit time, and
  the modeled processing-cost parts (vanilla stack/classification,
  enclave match, function execution);
* a rate-limited queue reports enqueue and release times;
* every output port reports enqueue and transmit-start times plus the
  serialization and propagation delay of the hop;
* the destination host reports arrival.

The collector joins them into one :class:`PacketRecord` per delivered
packet.  The accounting identity is the design contract::

    e2e = t_received - t_sent
        = stage_classify + enclave_match + interpreter_execute
        + host_queue + ratelimiter_queue + switch_queue
        + link_serialization + link_propagation + unattributed

``unattributed`` is computed as the closing residual, so the segments
*always* sum exactly to the observed end-to-end delay; with complete
instrumentation it is exactly 0 (asserted analytically in
``tests/latency/test_decompose.py``), and any positive residual is an
honest signal of an uninstrumented wait, never a silently absorbed
error.

Segment taxonomy (all integer ns of simulated time):

``stage_classify``
    The vanilla stack + API/classification cost
    (``HostStack.stack_latency_ns`` — paper Figure 12's "API" +
    baseline send path).
``enclave_match``
    The enclave placement's per-packet base cost (match-action
    lookup; ``Enclave.per_packet_base_cost_ns``).
``interpreter_execute``
    Action-function execution: interpreted bytecode ops or natively
    compiled actions (``interpreter_ns_per_op`` /
    ``native_action_cost_ns``).
``host_queue``
    Extra wait from the stack's monotonic-emission clamp (a packet
    cannot leave before its predecessor — host-side HOL ordering).
``ratelimiter_queue``
    Token-bucket queueing in :mod:`repro.stack.ratelimiter` (Pulsar);
    0 for packets that pass through unlimited.
``switch_queue``
    Output-port queueing summed over every hop — the host NIC and
    each switch port (all devices are output-queued).
``link_serialization``
    Wire serialization time summed over every hop.
``link_propagation``
    Propagation delay summed over every hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Attributable segment classes, in data-path order.
SEGMENTS: Tuple[str, ...] = (
    "stage_classify",
    "enclave_match",
    "interpreter_execute",
    "host_queue",
    "ratelimiter_queue",
    "switch_queue",
    "link_serialization",
    "link_propagation",
)

#: The explicit residual class closing the accounting identity.
RESIDUAL = "unattributed"

#: Every class a decomposition carries.
ALL_CLASSES: Tuple[str, ...] = SEGMENTS + (RESIDUAL,)


def flow_key(five_tuple: Sequence[int]) -> str:
    """Canonical (URL-safe) string form of a flow's five-tuple."""
    return "-".join(str(v) for v in five_tuple)


class PacketRecord:
    """One delivered packet's complete delay decomposition."""

    __slots__ = ("packet_id", "flow", "function", "size_bytes",
                 "sent_ns", "received_ns", "segments")

    def __init__(self, packet_id: int, flow: str, function: str,
                 size_bytes: int, sent_ns: int, received_ns: int,
                 segments: Dict[str, int]) -> None:
        self.packet_id = packet_id
        self.flow = flow
        self.function = function
        self.size_bytes = size_bytes
        self.sent_ns = sent_ns
        self.received_ns = received_ns
        self.segments = segments

    @property
    def e2e_ns(self) -> int:
        return self.received_ns - self.sent_ns

    @property
    def residual_ns(self) -> int:
        return self.segments[RESIDUAL]

    def as_dict(self) -> Dict[str, object]:
        return {
            "packet_id": self.packet_id,
            "flow": self.flow,
            "function": self.function,
            "size_bytes": self.size_bytes,
            "sent_ns": self.sent_ns,
            "received_ns": self.received_ns,
            "e2e_ns": self.e2e_ns,
            "segments": dict(self.segments),
        }

    def __repr__(self) -> str:
        return (f"PacketRecord(#{self.packet_id} {self.flow} "
                f"e2e={self.e2e_ns}ns "
                f"residual={self.residual_ns}ns)")


class _Journey:
    """The in-flight event accumulator for one tracked packet."""

    __slots__ = ("flow", "function", "size_bytes", "sent_ns",
                 "emit_ns", "classify_ns", "match_ns", "execute_ns",
                 "rlq_in_ns", "rlq_wait_ns", "port_in_ns",
                 "port_wait_ns", "serialize_ns", "propagate_ns")

    def __init__(self, flow: str, function: str, size_bytes: int,
                 sent_ns: int, emit_ns: int, classify_ns: int,
                 match_ns: int, execute_ns: int) -> None:
        self.flow = flow
        self.function = function
        self.size_bytes = size_bytes
        self.sent_ns = sent_ns
        self.emit_ns = emit_ns
        self.classify_ns = classify_ns
        self.match_ns = match_ns
        self.execute_ns = execute_ns
        self.rlq_in_ns: Optional[int] = None
        self.rlq_wait_ns = 0
        self.port_in_ns: Optional[int] = None
        self.port_wait_ns = 0
        self.serialize_ns = 0
        self.propagate_ns = 0


class LatencyCollector:
    """Joins per-packet data-path events into segment records.

    Bounded: at most ``max_pending`` in-flight journeys are kept;
    when the bound is hit the oldest journey is evicted (and counted)
    — a packet lost without an observable drop event can therefore
    never grow memory.  Completed records are pushed into a
    :class:`~repro.latency.store.LatencyStore`.

    Correlation is by ``packet.packet_id``; events for ids that were
    never started (sent before the collector was bound, or control
    traffic outside an instrumented stack) are counted as orphans and
    otherwise ignored.
    """

    def __init__(self, store=None, max_pending: int = 65536) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be > 0")
        if store is None:
            from .store import LatencyStore
            store = LatencyStore()
        self.store = store
        self.max_pending = max_pending
        self._pending: Dict[int, _Journey] = {}
        self.started = 0
        self.completed = 0
        self.dropped = 0
        self.evicted = 0
        self.restarted = 0
        self.orphan_events = 0

    # -- event intake (called from instrumented components) ------------

    def stack_sent(self, packet, now_ns: int, emit_ns: int,
                   classify_ns: int, match_ns: int, execute_ns: int,
                   functions: Sequence[str] = ()) -> None:
        """The host stack accepted a packet for transmission at
        ``now_ns`` and scheduled its emission at ``emit_ns``, having
        charged the given modeled processing costs."""
        pid = packet.packet_id
        if pid in self._pending:
            # A retransmission reuses the packet object (and id):
            # restart the journey — the decomposition describes the
            # delivering attempt.
            self.restarted += 1
        else:
            self.started += 1
        if len(self._pending) >= self.max_pending:
            self._pending.pop(next(iter(self._pending)))
            self.evicted += 1
        self._pending[pid] = _Journey(
            flow=flow_key(packet.five_tuple),
            function=functions[0] if functions else "",
            size_bytes=packet.size, sent_ns=now_ns, emit_ns=emit_ns,
            classify_ns=classify_ns, match_ns=match_ns,
            execute_ns=execute_ns)

    def rlq_enqueued(self, packet_id: int, now_ns: int,
                     queue: str) -> None:
        journey = self._pending.get(packet_id)
        if journey is None:
            self.orphan_events += 1
            return
        journey.rlq_in_ns = now_ns

    def rlq_released(self, packet_id: int, now_ns: int) -> None:
        journey = self._pending.get(packet_id)
        if journey is None:
            self.orphan_events += 1
            return
        if journey.rlq_in_ns is not None:
            journey.rlq_wait_ns += now_ns - journey.rlq_in_ns
            journey.rlq_in_ns = None

    def port_enqueued(self, packet_id: int, now_ns: int) -> None:
        journey = self._pending.get(packet_id)
        if journey is None:
            self.orphan_events += 1
            return
        journey.port_in_ns = now_ns

    def port_tx_start(self, packet_id: int, now_ns: int,
                      tx_ns: int, prop_ns: int) -> None:
        journey = self._pending.get(packet_id)
        if journey is None:
            self.orphan_events += 1
            return
        if journey.port_in_ns is not None:
            journey.port_wait_ns += now_ns - journey.port_in_ns
            journey.port_in_ns = None
        journey.serialize_ns += tx_ns
        journey.propagate_ns += prop_ns

    def packet_dropped(self, packet_id: int) -> None:
        """The packet will never arrive: discard its journey."""
        if self._pending.pop(packet_id, None) is not None:
            self.dropped += 1

    def host_received(self, packet, now_ns: int, host: str) -> None:
        """Arrival at a destination NIC: finalize and store."""
        journey = self._pending.pop(packet.packet_id, None)
        if journey is None:
            return
        segments = {
            "stage_classify": journey.classify_ns,
            "enclave_match": journey.match_ns,
            "interpreter_execute": journey.execute_ns,
            "host_queue": (journey.emit_ns - journey.sent_ns -
                           journey.classify_ns - journey.match_ns -
                           journey.execute_ns),
            "ratelimiter_queue": journey.rlq_wait_ns,
            "switch_queue": journey.port_wait_ns,
            "link_serialization": journey.serialize_ns,
            "link_propagation": journey.propagate_ns,
        }
        e2e = now_ns - journey.sent_ns
        segments[RESIDUAL] = e2e - sum(segments.values())
        self.completed += 1
        self.store.add(PacketRecord(
            packet_id=packet.packet_id, flow=journey.flow,
            function=journey.function, size_bytes=journey.size_bytes,
            sent_ns=journey.sent_ns, received_ns=now_ns,
            segments=segments))

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    def stats(self) -> Dict[str, int]:
        return {
            "started": self.started,
            "completed": self.completed,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "restarted": self.restarted,
            "orphan_events": self.orphan_events,
            "pending": len(self._pending),
        }

    def __repr__(self) -> str:
        return (f"LatencyCollector(completed={self.completed}, "
                f"pending={len(self._pending)}, "
                f"dropped={self.dropped})")

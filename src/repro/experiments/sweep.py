"""Multi-seed sweeps with confidence intervals.

The paper's Figures 9–11 report means with 95% confidence intervals
over ten runs.  :func:`sweep` repeats an experiment across seeds and
aggregates any numeric attributes of its result objects into
:class:`~repro.netsim.tracing.SeriesStats`, so benchmark output can
carry the same ± error bars.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields, is_dataclass
from typing import Callable, Dict, Iterable, Sequence

from ..netsim.tracing import SeriesStats


def numeric_fields(result) -> Dict[str, float]:
    """Extract the numeric attributes of a result object."""
    out: Dict[str, float] = {}
    if is_dataclass(result):
        names = [f.name for f in dataclass_fields(result)]
    else:
        names = [n for n in vars(result) if not n.startswith("_")]
    for name in names:
        value = getattr(result, name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def sweep(run: Callable[..., object], seeds: Sequence[int],
          **kwargs) -> Dict[str, SeriesStats]:
    """Run ``run(seed=s, **kwargs)`` for every seed and aggregate.

    Returns one :class:`SeriesStats` per numeric result field; each
    has ``.mean`` and ``.ci95`` (normal-approximation half-width,
    matching the paper's error-bar convention).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    stats: Dict[str, SeriesStats] = {}
    for seed in seeds:
        result = run(seed=seed, **kwargs)
        for name, value in numeric_fields(result).items():
            stats.setdefault(name, SeriesStats(name)).add(value)
    return stats


def format_sweep(title: str, stats: Dict[str, SeriesStats],
                 fields: Iterable[str]) -> str:
    """Render selected fields as ``mean ± ci95`` rows."""
    lines = [title]
    for name in fields:
        if name in stats:
            entry = stats[name]
            lines.append(f"  {name:<22} {entry.mean:10.1f} "
                         f"± {entry.ci95:.1f} "
                         f"(n={len(entry.values)})")
    return "\n".join(lines)

"""Simulator scale benchmark: single heap vs sharded fat-tree.

Drives a k-ary fat-tree with a seeded random many-to-many workload
through the three execution backends (single heap, sharded-sequential,
sharded-multiprocessing) and reports events/second plus a per-host
receive digest that must agree across backends — the benchmark doubles
as an end-to-end equivalence check at a scale the pytest harness does
not reach.

Everything here is module-level and plain-data so the multiprocessing
backend can fork workers that rebuild only their own partition;
:class:`ScaleScenario` is the picklable setup/collect pair
:func:`repro.netsim.sharded.run_multiprocessing` expects.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim.packet import Packet
from ..netsim.sharded import (ShardPlan, ShardedSimulator,
                              run_multiprocessing)
from ..netsim.simulator import MS, Simulator
from ..netsim.topology import TopologySpec, fat_tree_spec

#: One send: (time_ns, src_host, dst_ip, src_port, payload_len, prio).
Send = Tuple[int, str, int, int, int, int]

_PAYLOADS = (0, 200, 700, 1460)


def make_scale_workload(spec: TopologySpec, seed: int,
                        packets_per_host: int,
                        horizon_ns: int) -> Tuple[Send, ...]:
    """Seeded many-to-many sends with globally distinct start times.

    Each host draws its transmit instants with ``rng.sample`` over a
    disjoint per-host residue class, so no two transmissions anywhere
    start at the same nanosecond — the one case where sharded and
    single-heap tie-breaking can legitimately diverge (see
    docs/SHARDING.md).
    """
    rng = random.Random(seed)
    names = [h.name for h in spec.hosts]
    ips = {h.name: h.ip for h in spec.hosts}
    n = len(names)
    sends: List[Send] = []
    port = 10_000
    for idx, src in enumerate(names):
        slots = rng.sample(range(horizon_ns // n), packets_per_host)
        for slot in sorted(slots):
            dst = names[rng.randrange(n - 1)]
            if dst == src:
                dst = names[n - 1]
            sends.append((slot * n + idx, src, ips[dst], port,
                          rng.choice(_PAYLOADS), rng.randrange(8)))
            port = 10_000 + (port - 9_999) % 50_000
    sends.sort()
    return tuple(sends)


class ScaleSink:
    """A minimal host 'stack': counts arrivals and folds
    (time, flow, size, priority) into an order-dependent digest."""

    def __init__(self, host) -> None:
        self.count = 0
        self.acc = 0
        self._host = host
        host.bind_stack(self)

    def handle_rx(self, packet: Packet, from_port) -> None:
        self.count += 1
        self.acc = (self.acc * 1_000_003
                    + self._host.sim.now * 31
                    + packet.src_ip * 7
                    + packet.src_port * 3
                    + packet.size
                    + packet.priority) & 0xFFFFFFFFFFFFFFFF


def _send_one(host, dst_ip: int, src_port: int, payload_len: int,
              priority: int) -> None:
    packet = Packet(src_ip=host.ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=9000, payload_len=payload_len,
                    created_at=host.sim.now)
    packet.priority = priority
    host.ports[0].enqueue(packet)


def _schedule_sends(hosts, sends: Tuple[Send, ...]) -> None:
    for t, src, dst_ip, src_port, payload_len, priority in sends:
        host = hosts.get(src)
        if host is None:
            continue  # owned by another shard
        host.sim.at(t, _send_one, host, dst_ip, src_port,
                    payload_len, priority)


class ScaleScenario:
    """setup/collect pair shared by all three backends."""

    def __init__(self, sends: Tuple[Send, ...]) -> None:
        self.sends = sends

    def setup(self, partition) -> None:
        partition.scale_sinks = {
            name: ScaleSink(host)
            for name, host in partition.hosts.items()}
        _schedule_sends(partition.hosts, self.sends)

    def collect(self, partition) -> Dict[str, Tuple[int, int]]:
        return {name: (sink.count, sink.acc)
                for name, sink in partition.scale_sinks.items()}


@dataclass
class ScaleResult:
    k: int
    n_hosts: int
    n_shards: int              # host-group shards (coordinator extra)
    packets: int
    events_single: int = 0
    events_sharded: int = 0
    events_mp: int = 0
    windows: int = 0
    wall_single_s: float = 0.0
    wall_sharded_s: float = 0.0
    wall_mp_s: float = 0.0
    digests_match: bool = False
    mp_digests_match: Optional[bool] = None   # None: mp not run
    rx_packets: int = 0

    @property
    def eps_single(self) -> float:
        return self.events_single / max(self.wall_single_s, 1e-9)

    @property
    def eps_sharded(self) -> float:
        return self.events_sharded / max(self.wall_sharded_s, 1e-9)

    @property
    def eps_mp(self) -> float:
        return self.events_mp / max(self.wall_mp_s, 1e-9)


def _merge(per_shard: Dict[int, Dict[str, Tuple[int, int]]]
           ) -> Dict[str, Tuple[int, int]]:
    merged: Dict[str, Tuple[int, int]] = {}
    for shard_result in per_shard.values():
        merged.update(shard_result)
    return merged


def run_scale(k: int = 8, n_shards: int = 4,
              packets_per_host: int = 40,
              horizon_ns: int = 2 * MS,
              seed: int = 1,
              run_mp: bool = False) -> ScaleResult:
    """Run the same workload through single-heap and sharded backends
    (and optionally multiprocessing) and time each."""
    spec, group_of = fat_tree_spec(k=k, salt_seed=seed)
    # Fold the k pods onto n_shards host shards; cores -> coordinator.
    plan = ShardPlan.from_groups(group_of, n_shards)
    sends = make_scale_workload(spec, seed, packets_per_host,
                                horizon_ns)
    result = ScaleResult(k=k, n_hosts=len(spec.hosts),
                         n_shards=n_shards, packets=len(sends))
    scenario = ScaleScenario(sends)

    # Single heap.
    sim = Simulator(seed=seed)
    net = spec.build(sim)
    sinks = {name: ScaleSink(host)
             for name, host in net.hosts.items()}
    _schedule_sends(net.hosts, sends)
    t0 = time.perf_counter()
    result.events_single = sim.run()
    result.wall_single_s = time.perf_counter() - t0
    single_rx = {name: (sink.count, sink.acc)
                 for name, sink in sinks.items()}
    result.rx_packets = sum(c for c, _ in single_rx.values())

    # Sharded, sequential backend.
    sharded = ShardedSimulator(spec, plan, seed=seed)
    for partition in sharded.partitions:
        scenario.setup(partition)
    t0 = time.perf_counter()
    result.events_sharded = sharded.run()
    result.wall_sharded_s = time.perf_counter() - t0
    result.windows = sharded.windows
    sharded_rx = _merge({p.shard_id: scenario.collect(p)
                         for p in sharded.partitions})
    result.digests_match = sharded_rx == single_rx

    # Sharded, multiprocessing backend (opt-in: fork + per-shard CPU).
    if run_mp:
        mp_result = run_multiprocessing(spec, plan, scenario,
                                        seed=seed)
        result.events_mp = mp_result.events_processed
        result.wall_mp_s = mp_result.run_wall_s
        result.mp_digests_match = (_merge(mp_result.results)
                                   == sharded_rx)
    return result


def format_scale(result: ScaleResult) -> str:
    lines = [
        f"fat-tree k={result.k}: {result.n_hosts} hosts, "
        f"{result.n_shards}+1 shards, {result.packets} packets "
        f"({result.rx_packets} delivered)",
        f"  single heap : {result.events_single:>8} events in "
        f"{result.wall_single_s * 1e3:8.1f} ms "
        f"({result.eps_single / 1e3:8.1f}k ev/s)",
        f"  sharded seq : {result.events_sharded:>8} events in "
        f"{result.wall_sharded_s * 1e3:8.1f} ms "
        f"({result.eps_sharded / 1e3:8.1f}k ev/s, "
        f"{result.windows} windows)",
    ]
    if result.mp_digests_match is not None:
        lines.append(
            f"  sharded mp  : {result.events_mp:>8} events in "
            f"{result.wall_mp_s * 1e3:8.1f} ms "
            f"({result.eps_mp / 1e3:8.1f}k ev/s, "
            f"speedup x{result.eps_mp / max(result.eps_single, 1e-9):.2f}"
            f" vs single)")
    lines.append(
        f"  digests     : sharded {'MATCH' if result.digests_match else 'MISMATCH'}"
        + ("" if result.mp_digests_match is None else
           f", mp {'MATCH' if result.mp_digests_match else 'MISMATCH'}"))
    return "\n".join(lines)

"""Section 5.4 microbenchmarks: interpreter footprint and speed.

"In the examples discussed in the paper, the (operand) stack and heap
space of the interpreter are in the order of 64 and 256 bytes
respectively."  This module compiles the three case-study programs,
measures their operand-stack/heap high-water marks and bytecode ops
per invocation, and times interpreted vs native execution — the
ablation behind the paper's "small penalty for the convenience of
injecting code at runtime" claim.
"""

from __future__ import annotations

import contextlib
import gc
import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..core.stage import Classification
from ..functions.library import DemoPacket, DemoSpec, table1


@dataclass
class MicroResult:
    name: str
    bytecode_len: int
    ops_per_packet: float
    stack_bytes: int
    heap_bytes: int
    interp_ns_per_packet: float
    native_ns_per_packet: float

    @property
    def slowdown(self) -> float:
        if self.native_ns_per_packet <= 0:
            return 0.0
        return self.interp_ns_per_packet / self.native_ns_per_packet

    def row(self) -> str:
        return (f"{self.name:<16} code={self.bytecode_len:3d} ops "
                f"{self.ops_per_packet:5.1f}  stack {self.stack_bytes:3d} B  "
                f"heap {self.heap_bytes:4d} B  interp "
                f"{self.interp_ns_per_packet:8.0f} ns  native "
                f"{self.native_ns_per_packet:8.0f} ns  "
                f"({self.slowdown:4.1f}x)")


#: The case-study functions of Sections 5.1-5.3 plus port knocking.
CASE_STUDY_FUNCTIONS = ("PIAS", "SFF", "WCMP", "Pulsar",
                        "Port knocking")


def _spec_for(name: str) -> DemoSpec:
    for entry in table1():
        if entry.name == name and entry.demo is not None:
            return entry.demo
    raise KeyError(name)


def _timed_run(spec: DemoSpec, backend: str, packets: int,
               repeat: int) -> Tuple[float, object]:
    """Returns (ns per processed packet, the enclave function)."""
    from ..core.enclave import Enclave

    best = float("inf")
    fn = None
    for _ in range(repeat):
        enclave = Enclave(f"micro.{spec.function_name}")
        enclave.install_function(
            spec.action, name=spec.function_name,
            message_schema=spec.message_schema,
            global_schema=spec.global_schema, backend=backend)
        for name, value in spec.global_scalars.items():
            enclave.set_global(spec.function_name, name, value)
        for name, values in spec.global_arrays.items():
            enclave.set_global_array(spec.function_name, name,
                                     list(values))
        for name, keyed in spec.global_keyed.items():
            for key, values in keyed.items():
                enclave.set_global_keyed(spec.function_name, name,
                                         key, list(values))
        enclave.install_rule("*", spec.function_name)
        cls = []
        if spec.metadata:
            metadata = dict(spec.metadata)
            metadata.setdefault("msg_id", ("micro", 1))
            cls = [Classification(class_name="micro.r1.msg",
                                  metadata=metadata)]
        overrides = (spec.packets or [{}])[0]
        with _gc_paused():
            t0 = time.perf_counter_ns()
            for i in range(packets):
                packet = DemoPacket()
                for attr, value in overrides.items():
                    setattr(packet, attr, value)
                enclave.process_packet(packet, cls, now_ns=i)
            elapsed = time.perf_counter_ns() - t0
        best = min(best, elapsed / packets)
        fn = enclave.function(spec.function_name)
    return best, fn


def run_micro(packets: int = 300, repeat: int = 3,
              names: Tuple[str, ...] = CASE_STUDY_FUNCTIONS
              ) -> List[MicroResult]:
    results = []
    for name in names:
        spec = _spec_for(name)
        interp_ns, fn = _timed_run(spec, "interpreter", packets,
                                   repeat)
        native_ns, _ = _timed_run(spec, "native", packets, repeat)
        results.append(MicroResult(
            name=name,
            bytecode_len=sum(len(f.code)
                             for f in fn.program.functions),
            ops_per_packet=fn.stats.ops_executed /
            max(1, fn.stats.invocations),
            stack_bytes=fn.stats.max_stack_bytes,
            heap_bytes=fn.stats.max_heap_bytes,
            interp_ns_per_packet=interp_ns,
            native_ns_per_packet=native_ns))
    return results


def format_results(results: List[MicroResult]) -> str:
    lines = ["Section 5.4 micro — interpreter footprint per "
             "case-study program"]
    lines += [r.row() for r in results]
    return "\n".join(lines)


# -- dispatch-mode micro: tree walk vs fast vs codegen ------------------

@dataclass
class DispatchResult:
    """ns/op of one program under every interpreter dispatch mode.

    ops/invocation is identical across modes by construction
    (superinstructions and codegen segments count their constituent
    ops; enforced by ``tests/lang/test_execstats.py``), so ns/op is
    directly comparable.
    """

    name: str
    ops_per_invoke: int
    tree_ns_per_op: float
    fast_ns_per_op: float
    codegen_ns_per_op: float = 0.0

    @property
    def speedup(self) -> float:
        if self.fast_ns_per_op <= 0:
            return 0.0
        return self.tree_ns_per_op / self.fast_ns_per_op

    @property
    def codegen_speedup(self) -> float:
        if self.codegen_ns_per_op <= 0:
            return 0.0
        return self.tree_ns_per_op / self.codegen_ns_per_op

    def row(self) -> str:
        line = (f"{self.name:<18} ops {self.ops_per_invoke:4d}  "
                f"tree {self.tree_ns_per_op:7.1f} ns/op  fast "
                f"{self.fast_ns_per_op:7.1f} ns/op "
                f"({self.speedup:4.2f}x)")
        if self.codegen_ns_per_op > 0:
            line += (f"  pycodegen {self.codegen_ns_per_op:7.1f} "
                     f"ns/op ({self.codegen_speedup:5.2f}x)")
        return line


def _pias_search_snapshot(levels: int = 16):
    """The PIAS program plus a snapshot that runs its search loop.

    ``levels`` (threshold, priority) records with the message size
    above every threshold force the demotion search (Fig 2's loop) to
    walk the whole table — the interpreter's hottest realistic path.
    """
    from ..lang import DEFAULT_PACKET_SCHEMA
    from ..lang.compiler import compile_action

    spec = _spec_for("PIAS")
    _, program = compile_action(
        spec.action, packet_schema=DEFAULT_PACKET_SCHEMA,
        message_schema=spec.message_schema,
        global_schema=spec.global_schema, name=spec.function_name)
    records: List[int] = []
    for i in range(levels):
        records.extend((10_000 * (i + 1), 7 - min(i, 7)))
    fields = []
    for ref in program.field_table:
        if (ref.scope, ref.name) == ("message", "size"):
            fields.append(10_000 * levels + 1)   # above every threshold
        elif (ref.scope, ref.name) == ("message", "priority"):
            fields.append(1)   # demotion enabled -> search runs
        else:
            fields.append(0)
    arrays = [list(records) for _ in program.array_table]
    return program, fields, arrays


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic GC around a timed region (timeit does the
    same): with a large live heap — e.g. mid-test-suite — gen2
    collections otherwise land inside the loop and dominate ns/op."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _time_dispatch(program, fields, arrays, dispatch: str,
                   invocations: int, repeat: int) -> Tuple[float, int]:
    """Best-of-``repeat`` (ns/invocation, ops/invocation)."""
    from ..lang.interpreter import Interpreter

    interp = Interpreter(dispatch=dispatch)
    result = interp.execute(program, list(fields),
                            [list(a) for a in arrays])  # warm-up
    ops = result.stats.ops_executed
    best = float("inf")
    with _gc_paused():
        for _ in range(repeat):
            t0 = time.perf_counter_ns()
            for _ in range(invocations):
                interp.execute(program, list(fields),
                               [list(a) for a in arrays])
            best = min(best,
                       (time.perf_counter_ns() - t0) / invocations)
    return best, ops


def run_dispatch_micro(invocations: int = 1500, repeat: int = 3,
                       levels: int = 16) -> List[DispatchResult]:
    """ns/op per backend: tree walk vs fast dispatch vs codegen."""
    program, fields, arrays = _pias_search_snapshot(levels)
    results = []
    tree_ns, ops = _time_dispatch(program, fields, arrays, "tree",
                                  invocations, repeat)
    fast_ns, fast_ops = _time_dispatch(program, fields, arrays,
                                       "fast", invocations, repeat)
    cg_ns, cg_ops = _time_dispatch(program, fields, arrays,
                                   "pycodegen", invocations, repeat)
    assert ops == fast_ops == cg_ops, \
        "dispatch modes disagree on op count"
    results.append(DispatchResult(
        name=f"PIAS search x{levels}",
        ops_per_invoke=ops,
        tree_ns_per_op=tree_ns / ops,
        fast_ns_per_op=fast_ns / ops,
        codegen_ns_per_op=cg_ns / ops))
    return results


def format_dispatch_results(results: List[DispatchResult]) -> str:
    lines = ["Interpreter dispatch — tree walk vs closure-threaded "
             "fast dispatch vs pycodegen"]
    lines += [r.row() for r in results]
    return "\n".join(lines)


# -- batch micro: scalar data path vs Enclave.process_batch -------------

@dataclass
class BatchResult:
    """ns/packet of rule-homogeneous traffic, scalar vs batched.

    Both paths run the same packets through the same match-action
    pipeline (``tests/lang/test_differential.py`` proves the results
    identical); the batch path amortizes the per-packet lookup,
    concurrency-guard and dispatch-context setup across each group.
    """

    name: str
    batch_size: int
    scalar_ns_per_packet: float
    batch_ns_per_packet: float

    @property
    def speedup(self) -> float:
        if self.batch_ns_per_packet <= 0:
            return 0.0
        return self.scalar_ns_per_packet / self.batch_ns_per_packet

    def row(self) -> str:
        return (f"{self.name:<18} batch={self.batch_size:3d}  scalar "
                f"{self.scalar_ns_per_packet:8.0f} ns/pkt  batch "
                f"{self.batch_ns_per_packet:8.0f} ns/pkt  "
                f"({self.speedup:4.2f}x)")


def _batch_tag_action(packet):
    """A tiny header-rewriting action (PARALLEL, packet state only):
    small enough that per-packet setup, not bytecode execution,
    dominates — the traffic profile batching targets."""
    if packet.size > 1000:
        packet.priority = 1
    else:
        packet.priority = 5
    packet.path_id = 1


def _batch_enclave():
    from ..core.enclave import Enclave

    enclave = Enclave("micro.batch")
    enclave.install_function(_batch_tag_action, name="tag")
    enclave.install_rule("*", "tag")
    return enclave


def run_batch_micro(packets: int = 4096, batch_size: int = 64,
                    repeat: int = 3) -> List[BatchResult]:
    """Best-of-``repeat`` ns/packet: scalar loop vs batched chunks.

    Rule-homogeneous traffic (every packet matches the same rule) so
    every batch collapses into one group — the headline case of the
    batched data path.  Building the ``(packet, classifications)``
    entry list is charged to the batch side: the host stack pays it
    when flushing a tick's backlog.
    """
    from ..functions.library import DemoPacket

    cls: Tuple = ()
    scalar_best = float("inf")
    batch_best = float("inf")
    for _ in range(repeat):
        enclave = _batch_enclave()
        pkts = [DemoPacket() for _ in range(packets)]
        enclave.process_packet(DemoPacket(), cls, now_ns=0)  # warm-up
        with _gc_paused():
            t0 = time.perf_counter_ns()
            for packet in pkts:
                enclave.process_packet(packet, cls, now_ns=0)
            scalar_best = min(
                scalar_best,
                (time.perf_counter_ns() - t0) / packets)

        enclave = _batch_enclave()
        pkts = [DemoPacket() for _ in range(packets)]
        enclave.process_packet(DemoPacket(), cls, now_ns=0)  # warm-up
        with _gc_paused():
            t0 = time.perf_counter_ns()
            for start in range(0, packets, batch_size):
                enclave.process_batch(
                    [(packet, cls)
                     for packet in pkts[start:start + batch_size]],
                    now_ns=0)
            batch_best = min(
                batch_best,
                (time.perf_counter_ns() - t0) / packets)
    return [BatchResult(name="tag homogeneous",
                        batch_size=batch_size,
                        scalar_ns_per_packet=scalar_best,
                        batch_ns_per_packet=batch_best)]


def format_batch_results(results: List[BatchResult]) -> str:
    lines = ["Enclave data path — scalar process_packet vs batched "
             "process_batch (rule-homogeneous)"]
    lines += [r.row() for r in results]
    return "\n".join(lines)

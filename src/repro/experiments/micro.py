"""Section 5.4 microbenchmarks: interpreter footprint and speed.

"In the examples discussed in the paper, the (operand) stack and heap
space of the interpreter are in the order of 64 and 256 bytes
respectively."  This module compiles the three case-study programs,
measures their operand-stack/heap high-water marks and bytecode ops
per invocation, and times interpreted vs native execution — the
ablation behind the paper's "small penalty for the convenience of
injecting code at runtime" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..core.stage import Classification
from ..functions.library import DemoPacket, DemoSpec, table1


@dataclass
class MicroResult:
    name: str
    bytecode_len: int
    ops_per_packet: float
    stack_bytes: int
    heap_bytes: int
    interp_ns_per_packet: float
    native_ns_per_packet: float

    @property
    def slowdown(self) -> float:
        if self.native_ns_per_packet <= 0:
            return 0.0
        return self.interp_ns_per_packet / self.native_ns_per_packet

    def row(self) -> str:
        return (f"{self.name:<16} code={self.bytecode_len:3d} ops "
                f"{self.ops_per_packet:5.1f}  stack {self.stack_bytes:3d} B  "
                f"heap {self.heap_bytes:4d} B  interp "
                f"{self.interp_ns_per_packet:8.0f} ns  native "
                f"{self.native_ns_per_packet:8.0f} ns  "
                f"({self.slowdown:4.1f}x)")


#: The case-study functions of Sections 5.1-5.3 plus port knocking.
CASE_STUDY_FUNCTIONS = ("PIAS", "SFF", "WCMP", "Pulsar",
                        "Port knocking")


def _spec_for(name: str) -> DemoSpec:
    for entry in table1():
        if entry.name == name and entry.demo is not None:
            return entry.demo
    raise KeyError(name)


def _timed_run(spec: DemoSpec, backend: str, packets: int,
               repeat: int) -> Tuple[float, object]:
    """Returns (ns per processed packet, the enclave function)."""
    from ..core.enclave import Enclave

    best = float("inf")
    fn = None
    for _ in range(repeat):
        enclave = Enclave(f"micro.{spec.function_name}")
        enclave.install_function(
            spec.action, name=spec.function_name,
            message_schema=spec.message_schema,
            global_schema=spec.global_schema, backend=backend)
        for name, value in spec.global_scalars.items():
            enclave.set_global(spec.function_name, name, value)
        for name, values in spec.global_arrays.items():
            enclave.set_global_array(spec.function_name, name,
                                     list(values))
        for name, keyed in spec.global_keyed.items():
            for key, values in keyed.items():
                enclave.set_global_keyed(spec.function_name, name,
                                         key, list(values))
        enclave.install_rule("*", spec.function_name)
        cls = []
        if spec.metadata:
            metadata = dict(spec.metadata)
            metadata.setdefault("msg_id", ("micro", 1))
            cls = [Classification(class_name="micro.r1.msg",
                                  metadata=metadata)]
        overrides = (spec.packets or [{}])[0]
        t0 = time.perf_counter_ns()
        for i in range(packets):
            packet = DemoPacket()
            for attr, value in overrides.items():
                setattr(packet, attr, value)
            enclave.process_packet(packet, cls, now_ns=i)
        elapsed = time.perf_counter_ns() - t0
        best = min(best, elapsed / packets)
        fn = enclave.function(spec.function_name)
    return best, fn


def run_micro(packets: int = 300, repeat: int = 3,
              names: Tuple[str, ...] = CASE_STUDY_FUNCTIONS
              ) -> List[MicroResult]:
    results = []
    for name in names:
        spec = _spec_for(name)
        interp_ns, fn = _timed_run(spec, "interpreter", packets,
                                   repeat)
        native_ns, _ = _timed_run(spec, "native", packets, repeat)
        results.append(MicroResult(
            name=name,
            bytecode_len=sum(len(f.code)
                             for f in fn.program.functions),
            ops_per_packet=fn.stats.ops_executed /
            max(1, fn.stats.invocations),
            stack_bytes=fn.stats.max_stack_bytes,
            heap_bytes=fn.stats.max_heap_bytes,
            interp_ns_per_packet=interp_ns,
            native_ns_per_packet=native_ns))
    return results


def format_results(results: List[MicroResult]) -> str:
    lines = ["Section 5.4 micro — interpreter footprint per "
             "case-study program"]
    lines += [r.row() for r in results]
    return "\n".join(lines)

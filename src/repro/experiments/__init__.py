"""Experiment runners that regenerate the paper's tables and figures.

One module per evaluation artifact:

* :mod:`.fig9`  — flow scheduling FCTs (baseline / PIAS / SFF,
  native vs Eden);
* :mod:`.fig10` — ECMP vs WCMP throughput on the asymmetric topology;
* :mod:`.fig11` — Pulsar storage QoS (isolated / simultaneous /
  rate-controlled);
* :mod:`.fig12` — CPU overhead of the Eden components;
* :mod:`.micro` — Section 5.4 interpreter footprint and
  interpreted-vs-native cost;
* :mod:`.scale` — single-heap vs sharded simulator scale benchmark
  (fat-tree events/sec + cross-backend equivalence digests);
* Table 1 lives in :mod:`repro.functions.library`.

The pytest-benchmark harnesses in ``benchmarks/`` are thin wrappers
around these runners.
"""

from . import fig9, fig10, fig11, fig12, micro, scale, sweep

__all__ = ["fig9", "fig10", "fig11", "fig12", "micro", "scale",
           "sweep"]

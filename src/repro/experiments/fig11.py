"""Figure 11: READ vs WRITE storage throughput under Pulsar.

Paper setup (Section 5.3): two tenants issue 64 KB IOs against a
RAM-disk storage server behind a 1 Gbps link — one tenant READs, the
other WRITEs.  Run in isolation each gets the link; run simultaneously
the WRITEs collapse (READ requests are cheap to issue and fill the
shared server queue); with Pulsar's rate control — charging READ
*requests* by their operation size at the client — throughput
equalizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps.storage import (OP_READ, OP_WRITE, READ_PORT,
                            StorageClient, StorageServer, WRITE_PORT)
from ..apps.workloads import generic_app_stage
from ..core.controller import Controller
from ..core.enclave import Enclave
from ..functions.pulsar import PulsarDeployment
from ..netsim.simulator import GBPS, MBPS, MS, Simulator
from ..netsim.topology import star


@dataclass
class Fig11Result:
    scenario: str
    read_mbytes_per_s: float
    write_mbytes_per_s: float

    def row(self) -> str:
        return (f"{self.scenario:<16} reads: "
                f"{self.read_mbytes_per_s:6.1f} MB/s   writes: "
                f"{self.write_mbytes_per_s:6.1f} MB/s")


def _build(seed: int, rate_controlled: bool,
           server_link_bps: int, backend_bps: int,
           tenant_rate_bps: int):
    sim = Simulator(seed=seed)
    net = star(sim, 3, host_rate_bps=10 * GBPS,
               host_rates={"h3": server_link_bps})
    controller = Controller()
    stacks = {}
    stage = generic_app_stage()
    # The controller programs the stage: classify every IO message and
    # expose the metadata Pulsar needs (op type, op size, tenant).
    from ..core.stage import Classifier
    stage.create_stage_rule("r1", Classifier.of(), "io",
                            ["msg_id", "msg_size", "op_read",
                             "tenant"])
    for name, host in net.hosts.items():
        enclave = None
        if rate_controlled and name in ("h1", "h2"):
            enclave = Enclave(f"{name}.enclave", clock=sim.clock,
                              rng=sim.rng)
            controller.register_enclave(name, enclave)
        stacks[name] = HostStackFactory(sim, host, enclave)
    server = StorageServer(sim, stacks["h3"],
                           backend_bps=backend_bps)
    if rate_controlled:
        deployment = PulsarDeployment(controller)
        deployment.install("h1", stacks["h1"],
                           {1: tenant_rate_bps})
        deployment.install("h2", stacks["h2"],
                           {2: tenant_rate_bps})
    return sim, net, stacks, server, stage


def HostStackFactory(sim, host, enclave):
    from ..stack.netstack import HostStack
    return HostStack(sim, host, enclave=enclave,
                     process_pure_acks=False)


def run_storage(scenario: str = "simultaneous", seed: int = 1,
                duration_ms: int = 250, warmup_ms: int = 30,
                gen_ops_per_sec: float = 5000.0,
                server_link_bps: int = 1 * GBPS,
                backend_bps: int = 1 * GBPS,
                tenant_rate_bps: int = 500 * MBPS) -> Fig11Result:
    """One Figure 11 scenario: ``isolated``, ``simultaneous``, or
    ``rate_controlled``."""
    if scenario not in ("isolated", "simultaneous",
                        "rate_controlled"):
        raise ValueError(f"unknown scenario {scenario!r}")

    window = (warmup_ms * MS, duration_ms * MS)

    def measure(run_read: bool, run_write: bool,
                rate_controlled: bool) -> Tuple[float, float]:
        sim, net, stacks, server, stage = _build(
            seed, rate_controlled, server_link_bps, backend_bps,
            tenant_rate_bps)
        server_ip = net.host_ip("h3")
        read_client = write_client = None
        if run_read:
            read_client = StorageClient(
                sim, stacks["h1"], server_ip, READ_PORT, OP_READ,
                tenant=1, gen_ops_per_sec=gen_ops_per_sec,
                stage=stage)
        if run_write:
            write_client = StorageClient(
                sim, stacks["h2"], server_ip, WRITE_PORT, OP_WRITE,
                tenant=2, gen_ops_per_sec=gen_ops_per_sec,
                stage=stage)
        sim.run(until_ns=duration_ms * MS)
        read_tput = (read_client.throughput_mbytes_per_s(*window)
                     if read_client else 0.0)
        write_tput = (write_client.throughput_mbytes_per_s(*window)
                      if write_client else 0.0)
        return read_tput, write_tput

    if scenario == "isolated":
        read_tput, _ = measure(True, False, False)
        _, write_tput = measure(False, True, False)
    elif scenario == "simultaneous":
        read_tput, write_tput = measure(True, True, False)
    else:
        read_tput, write_tput = measure(True, True, True)
    return Fig11Result(scenario=scenario,
                       read_mbytes_per_s=read_tput,
                       write_mbytes_per_s=write_tput)


def run_all(seed: int = 1, duration_ms: int = 250
            ) -> List[Fig11Result]:
    return [run_storage(s, seed=seed, duration_ms=duration_ms)
            for s in ("isolated", "simultaneous", "rate_controlled")]


def format_results(results: List[Fig11Result]) -> str:
    lines = ["Figure 11 — storage READ vs WRITE throughput (64 KB "
             "IOs, 1 Gbps server link)"]
    lines += [r.row() for r in results]
    return "\n".join(lines)

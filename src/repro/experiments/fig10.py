"""Figure 10: ECMP vs WCMP throughput on the asymmetric topology.

Paper setup (Section 5.2): two hosts joined by a 10 Gbps and a 1 Gbps
path (Figure 1); the programmable-NIC enclave runs per-packet path
selection.  With equal weights (ECMP) TCP throughput is dominated by
the slow path and peaks just over 2 Gbps; with 10:1 WCMP it reaches
about 7.8 Gbps — below the 11 Gbps min-cut because per-packet spraying
reorders segments — and native vs Eden is statistically
indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.controller import Controller
from ..core.enclave import Enclave, PLACEMENT_NIC
from ..functions.wcmp import WcmpDeployment
from ..netsim.simulator import GBPS, MS, Simulator
from ..netsim.topology import asymmetric_two_path
from ..stack.netstack import HostStack

SINK_PORT = 9200
CHUNK = 4_000_000


@dataclass
class Fig10Result:
    mode: str                  # "ecmp" | "wcmp"
    variant: str               # "native" | "eden"
    granularity: str           # "packet" | "message"
    throughput_mbps: float
    fast_path_share: float     # fraction of data packets on fast path
    retransmits: int
    timeouts: int

    def row(self) -> str:
        return (f"{self.mode:<5} {self.variant:<7} "
                f"({self.granularity:<7}): "
                f"{self.throughput_mbps:7.0f} Mbps   "
                f"fast-path share {self.fast_path_share:5.1%}   "
                f"rtx {self.retransmits}")


def run_wcmp(mode: str = "wcmp", variant: str = "eden",
             granularity: str = "packet", seed: int = 1,
             duration_ms: int = 120, warmup_ms: int = 20,
             n_flows: int = 4,
             fast_bps: int = 10 * GBPS,
             slow_bps: int = 1 * GBPS) -> Fig10Result:
    """One Figure 10 configuration; returns aggregate throughput."""
    if mode not in ("ecmp", "wcmp"):
        raise ValueError(f"unknown mode {mode!r}")
    if variant not in ("native", "eden"):
        raise ValueError(f"unknown variant {variant!r}")

    sim = Simulator(seed=seed)
    net = asymmetric_two_path(sim, fast_bps=fast_bps,
                              slow_bps=slow_bps)
    controller = Controller()
    enclave = Enclave("h1.nic", placement=PLACEMENT_NIC,
                      clock=sim.clock, rng=sim.rng)
    controller.register_enclave("h1", enclave)
    s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                   process_pure_acks=False)
    s2 = HostStack(sim, net.hosts["h2"])

    backend = "interpreter" if variant == "eden" else "native"
    deployment = WcmpDeployment(controller, net,
                                granularity=granularity,
                                backend=backend)
    rows = deployment.provision_pair("h1", "h2",
                                     equal_weights=(mode == "ecmp"))
    assert len(rows) == 2, rows

    # n long-running TCP flows h1 -> h2.
    delivered: Dict[int, int] = {}
    conns = []

    def on_conn(conn):
        conn.on_data = lambda c, total: delivered.__setitem__(
            c.five_tuple[3], total)

    s2.listen(SINK_PORT, on_conn)
    for _ in range(n_flows):
        conn = s1.connect(net.host_ip("h2"), SINK_PORT)

        def send_forever(c):
            def refill(record, now):
                c.message_send(CHUNK, on_complete=refill)
            c.message_send(CHUNK, on_complete=refill)

        conn.on_established = send_forever
        conns.append(conn)

    sim.run(until_ns=warmup_ms * MS)
    start_bytes = sum(delivered.values())
    fast0 = net.hosts["h2"].port_to("sfast").stats  # h2->sfast (acks)
    tx_fast0 = net.switches["sfast"].port_to("h2").stats.tx_packets
    tx_slow0 = net.switches["sslow"].port_to("h2").stats.tx_packets

    sim.run(until_ns=duration_ms * MS)
    end_bytes = sum(delivered.values())
    tx_fast1 = net.switches["sfast"].port_to("h2").stats.tx_packets
    tx_slow1 = net.switches["sslow"].port_to("h2").stats.tx_packets

    elapsed_ns = (duration_ms - warmup_ms) * MS
    mbps = (end_bytes - start_bytes) * 8e3 / elapsed_ns
    fast = tx_fast1 - tx_fast0
    slow = tx_slow1 - tx_slow0
    share = fast / (fast + slow) if fast + slow else 0.0
    return Fig10Result(
        mode=mode, variant=variant, granularity=granularity,
        throughput_mbps=mbps, fast_path_share=share,
        retransmits=sum(c.stats.retransmits for c in conns),
        timeouts=sum(c.stats.timeouts for c in conns))


def run_all(seed: int = 1, duration_ms: int = 120,
            granularity: str = "packet") -> List[Fig10Result]:
    results = []
    for mode in ("ecmp", "wcmp"):
        for variant in ("native", "eden"):
            results.append(run_wcmp(mode=mode, variant=variant,
                                    granularity=granularity,
                                    seed=seed,
                                    duration_ms=duration_ms))
    return results


def format_results(results: List[Fig10Result]) -> str:
    lines = ["Figure 10 — aggregate TCP throughput, "
             "asymmetric 10G+1G topology"]
    lines += [r.row() for r in results]
    return "\n".join(lines)

"""Fleet rollout demo: staged DDoS mitigation (repro.fleet).

Thin experiment front end over :mod:`repro.fleet.ddos`: a fleet of
compromised hosts floods a victim, and the controller stages a
rollout of the composed spoof-guard + per-source-rate-limit function
across the attacker enclaves.  The printed figure shows the victim's
goodput recovering wave by wave.  ``python -m repro fleet-demo``.
"""

from __future__ import annotations

from typing import Optional

from ..fleet.ddos import (DdosConfig, DdosResult, format_ddos,
                          run_ddos)
from ..netsim.simulator import MBPS


def run_demo(seed: int = 1, attackers: int = 8, loss: float = 0.10,
             attack_rate_mbps: Optional[int] = None,
             telemetry=None) -> DdosResult:
    """Run the staged DDoS-mitigation scenario."""
    cfg = DdosConfig(seed=seed, attackers=attackers,
                     control_loss=loss)
    if attack_rate_mbps is not None:
        cfg.attack_rate_bps = attack_rate_mbps * MBPS
    return run_ddos(cfg, telemetry=telemetry)


def format_result(result: DdosResult) -> str:
    summary = result.rollout_summary
    confirmed = sum(1 for w in summary.get("wave_records", ())
                    if w["outcome"] == "confirmed")
    lines = [format_ddos(result), ""]
    lines.append(
        f"  rollout: {confirmed}/{summary.get('waves', 0)} wave(s) "
        f"confirmed, state {summary.get('state', '?')}, "
        f"{summary.get('stale_nacks', 0)} stale nack(s)")
    lines.append(
        f"  attack packets sent: {result.attack_packets_sent}")
    return "\n".join(lines)

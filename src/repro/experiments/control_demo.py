"""Lossy control-channel scenario: convergence under faults.

The paper's control loop is coarse-timescale: enclaves observe,
the controller recomputes, new parameters roll out (Sections 2.1,
3.5).  This scenario exercises the whole :mod:`repro.control` stack
end to end on a deterministic simulator:

* a controller managing several enclaves over a ``SimTransport`` with
  injected message loss, duplication and jitter;
* PIAS installed everywhere; synthetic flows are pushed through each
  enclave so the real per-message ``size`` state accumulates, is
  sampled by the ``flow_sizes`` telemetry feed, and drives the
  :class:`~repro.functions.pias.PiasThresholdLoop`;
* WCMP installed at the first host; a ``path_capacity`` feed switches
  from symmetric to asymmetric mid-run, so the
  :class:`~repro.functions.wcmp.WcmpWeightLoop` must re-weight;
* one enclave restart mid-run (all data-plane soft state lost,
  desired state replayed on reconnect);
* a deliberately stale-epoch install at the end, which must be
  rejected without touching the data plane.

The run *converges* when every enclave's applied epoch and installed
state (PIAS thresholds, WCMP weights) equal the controller's desired
state despite the faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..control import (FaultInjector, InstallFunction, STALE_EPOCH,
                       schedule_restart)
from ..core.controller import Controller
from ..core.stage import Classifier, Stage
from ..functions.pias import (PIAS_FUNCTION_NAME, PIAS_GLOBAL_SCHEMA,
                              PIAS_MESSAGE_SCHEMA, PiasThresholdLoop,
                              pias_action, pias_flow_size_source)
from ..functions.wcmp import (FUNCTION_NAME as WCMP_FUNCTION_NAME,
                              WCMP_GLOBAL_SCHEMA, WcmpWeightLoop,
                              wcmp_action)
from ..netsim.simulator import MS, Simulator

#: Fixed flow-size population (bytes): a search-like mix of short
#: queries, medium responses, and long background transfers.
FLOW_SIZE_POPULATION = (2_000, 2_000, 2_000, 6_000, 20_000, 60_000,
                        200_000, 1_000_000)

_PACKET_BYTES = 1500


class _DemoPacket:
    """Minimal packet: just the schema fields PIAS touches."""

    __slots__ = ("size", "priority", "drop", "to_controller")

    def __init__(self, size: int) -> None:
        self.size = size
        self.priority = 7
        self.drop = 0
        self.to_controller = 0


class _FlowDriver:
    """Feeds synthetic flows through one enclave's PIAS pipeline.

    The driver is a real Eden *stage* (Section 3.3): it classifies
    each synthetic message with an installed classification rule, so
    packets take the full stage -> enclave -> interpreter data path —
    and with telemetry enabled, each packet tick opens a root span so
    the three steps nest into one trace.
    """

    def __init__(self, sim: Simulator, host: str, enclave,
                 interval_ns: int, telemetry=None) -> None:
        self.sim = sim
        self.host = host
        self.enclave = enclave
        self.interval_ns = interval_ns
        self.stage = Stage(f"demo.{host}",
                           classifier_fields=("kind",),
                           metadata_fields=("msg_id",),
                           telemetry=telemetry)
        self.stage.create_stage_rule("flow", Classifier.of(kind="flow"),
                                     "flow", ["msg_id"])
        self._tracer = (telemetry.tracer
                        if telemetry is not None and telemetry.enabled
                        else None)
        self._flow_seq = 0
        self._remaining = 0
        self._flow_key: Optional[tuple] = None
        self.packets = 0
        sim.schedule(interval_ns, self._tick)

    def _next_flow(self) -> None:
        size = FLOW_SIZE_POPULATION[
            self.sim.rng.randrange(len(FLOW_SIZE_POPULATION))]
        self._flow_seq += 1
        self._flow_key = (self.stage.name, self._flow_seq)
        self._remaining = size

    def _send_one(self, take: int) -> None:
        cls = self.stage.classify({"kind": "flow"},
                                  msg_id=self._flow_seq)
        self.enclave.process_packet(_DemoPacket(take), cls,
                                    now_ns=self.sim.now)

    def _tick(self) -> None:
        if self._remaining <= 0:
            if self._flow_key is not None and \
                    PIAS_FUNCTION_NAME in self.enclave.functions():
                self.enclave.end_message(PIAS_FUNCTION_NAME,
                                         self._flow_key)
            self._next_flow()
        take = min(_PACKET_BYTES, self._remaining)
        self._remaining -= take
        if self._tracer is not None:
            with self._tracer.span("message.packet", host=self.host,
                                   flow=self._flow_seq):
                self._send_one(take)
        else:
            self._send_one(take)
        self.packets += 1
        self.sim.schedule(self.interval_ns, self._tick)


@dataclass
class HostOutcome:
    applied_epoch: int
    desired_epoch: int
    pias_in_sync: bool
    wcmp_in_sync: bool
    restarts: int
    stale_rejections: int

    @property
    def converged(self) -> bool:
        return (self.applied_epoch == self.desired_epoch and
                self.pias_in_sync and self.wcmp_in_sync)


@dataclass
class ScenarioResult:
    hosts: Dict[str, HostOutcome] = field(default_factory=dict)
    channel: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, object] = field(default_factory=dict)
    pias_updates: int = 0
    wcmp_updates: int = 0
    reports_received: int = 0
    replays: int = 0
    stale_rejected: bool = False
    final_thresholds: List[Tuple[int, int]] = field(
        default_factory=list)
    final_weights: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return (bool(self.hosts) and self.stale_rejected and
                all(h.converged for h in self.hosts.values()))


def _pias_in_sync(controller: Controller, host: str) -> bool:
    ds = controller.plane.desired(host)
    want = ds.globals.get(
        (PIAS_FUNCTION_NAME, "priorities", "records", None))
    if want is None:
        return False
    flat: List[int] = []
    for row in want:
        flat.extend(row)
    enclave = controller.enclave(host)
    if PIAS_FUNCTION_NAME not in enclave.functions():
        return False
    store = enclave.function(PIAS_FUNCTION_NAME).global_store
    return list(store.array("priorities")) == flat


def _wcmp_in_sync(controller: Controller, host: str,
                  key: tuple) -> bool:
    ds = controller.plane.desired(host)
    want = ds.globals.get(
        (WCMP_FUNCTION_NAME, "paths", "keyed", key))
    if want is None:
        return True  # wcmp not managed at this host
    enclave = controller.enclave(host)
    if WCMP_FUNCTION_NAME not in enclave.functions():
        return False
    store = enclave.function(WCMP_FUNCTION_NAME).global_store
    return list(store.keyed_array("paths", key)) == list(want)


def run_scenario(seed: int = 1, loss: float = 0.10,
                 duration_ms: int = 400, num_hosts: int = 3,
                 report_interval_ms: int = 5,
                 restart_host_index: int = 1,
                 telemetry=None) -> ScenarioResult:
    """Run the lossy-channel convergence scenario; see module doc.

    Pass a :class:`repro.telemetry.Telemetry` bundle to record the
    run: every layer (stage, enclave, interpreter, control channel,
    simulator) publishes into its registry, and each packet tick is
    traced as a ``message.packet`` span tree.
    """
    sim = Simulator(seed=seed)
    sim.bind_telemetry(telemetry)
    faults = FaultInjector(rng=sim.rng, drop_prob=loss,
                           dup_prob=0.02, extra_delay_ns=200_000)
    controller = Controller(transport="sim", sim=sim, faults=faults,
                            telemetry=telemetry)

    from ..core.accounting import CpuAccounting
    from ..core.enclave import Enclave
    hosts = [f"h{i + 1}" for i in range(num_hosts)]
    drivers = []
    for i, host in enumerate(hosts):
        accounting = None
        if telemetry is not None and telemetry.enabled:
            accounting = CpuAccounting(enabled=True,
                                       registry=telemetry.registry)
        enclave = Enclave(f"{host}.enclave", clock=sim.clock,
                          accounting=accounting, telemetry=telemetry)
        controller.register_enclave(host, enclave)
        agent = controller.agent(host)
        agent.add_telemetry_source(
            "flow_sizes", pias_flow_size_source(enclave))
        drivers.append(_FlowDriver(sim, host, enclave,
                                   interval_ns=1 * MS,
                                   telemetry=telemetry))

    # Initial PIAS rollout: guessed thresholds, corrected by telemetry.
    initial = Controller.pias_thresholds([10_000, 100_000, 1_000_000])
    for host in hosts:
        controller.plane.install_function(
            host, PIAS_FUNCTION_NAME, pias_action,
            message_schema=PIAS_MESSAGE_SCHEMA,
            global_schema=PIAS_GLOBAL_SCHEMA)
        controller.plane.set_global_records(
            host, PIAS_FUNCTION_NAME, "priorities", initial)
        controller.plane.install_rule(host, "*", PIAS_FUNCTION_NAME)

    # WCMP at the first host: equal weights until telemetry reveals
    # the asymmetric path capacities.
    wcmp_host = hosts[0]
    wcmp_key = (1, 2)
    controller.plane.install_function(
        wcmp_host, WCMP_FUNCTION_NAME, wcmp_action,
        global_schema=WCMP_GLOBAL_SCHEMA)
    controller.plane.set_global_keyed(
        wcmp_host, WCMP_FUNCTION_NAME, "paths", wcmp_key,
        (1, 500, 2, 500))

    asym_after_ns = duration_ms * MS // 4

    def path_capacity() -> List[Tuple[int, int]]:
        if sim.now < asym_after_ns:
            return [(1, 5_000_000_000), (2, 5_000_000_000)]
        return [(1, 9_000_000_000), (2, 1_000_000_000)]

    controller.agent(wcmp_host).add_telemetry_source(
        "path_capacity", path_capacity)

    pias_loop = PiasThresholdLoop(controller.plane, hosts=hosts,
                                  min_samples=16)
    wcmp_loop = WcmpWeightLoop(controller.plane, wcmp_key,
                               [wcmp_host])
    controller.plane.add_loop(pias_loop)
    controller.plane.add_loop(wcmp_loop)

    for host in hosts:
        controller.agent(host).start_reporting(
            report_interval_ms * MS)

    restart_host = hosts[restart_host_index % num_hosts]
    schedule_restart(sim, duration_ms * MS // 2,
                     controller.agent(restart_host))

    sim.run(until_ns=duration_ms * MS)

    # Quiesce: freeze the control loops and stop injecting new
    # faults, then let retransmits drain within the deadline (the
    # convergence claim is about the lossy window; the drain window
    # is loss-free, reconfiguration-free and bounded).
    controller.plane.clear_loops()
    faults.drop_prob = 0.0
    faults.dup_prob = 0.0
    sim.run(until_ns=(duration_ms + 100) * MS)

    # A stale-epoch install must be rejected without side effects.
    victim = hosts[0]
    agent = controller.agent(victim)
    before = controller.enclave(victim).function(
        PIAS_FUNCTION_NAME).global_store.snapshot()
    controller.plane.endpoint.send(
        agent.address,
        InstallFunction(host=victim, epoch=0, name="rogue",
                        source_fn=pias_action,
                        kwargs={"message_schema": PIAS_MESSAGE_SCHEMA,
                                "global_schema": PIAS_GLOBAL_SCHEMA}))
    sim.run(until_ns=(duration_ms + 200) * MS)
    after = controller.enclave(victim).function(
        PIAS_FUNCTION_NAME).global_store.snapshot()
    stale_rejected = (
        agent.stale_rejections > 0 and before == after and
        "rogue" not in controller.enclave(victim).functions() and
        controller.plane.stale_nacks_seen > 0)

    result = ScenarioResult(
        channel=controller.plane.endpoint.stats.as_dict(),
        faults=faults.summary(),
        pias_updates=pias_loop.updates_pushed,
        wcmp_updates=wcmp_loop.updates_pushed,
        reports_received=controller.plane.reports_received,
        replays=controller.plane.replays,
        stale_rejected=stale_rejected,
        final_thresholds=list(pias_loop.current or ()),
        final_weights=list(wcmp_loop.current or ()))
    for host in hosts:
        agent = controller.agent(host)
        result.hosts[host] = HostOutcome(
            applied_epoch=agent.applied_epoch,
            desired_epoch=controller.plane.desired(host).epoch,
            pias_in_sync=_pias_in_sync(controller, host),
            wcmp_in_sync=_wcmp_in_sync(controller, host, wcmp_key),
            restarts=agent.restarts,
            stale_rejections=agent.stale_rejections)
    return result


def format_result(result: ScenarioResult) -> str:
    lines = ["control-demo: PIAS/WCMP convergence over a lossy "
             "control channel", ""]
    lines.append(f"{'host':<6} {'epoch':>11} {'pias':>6} "
                 f"{'wcmp':>6} {'restarts':>9} {'stale':>6}")
    for host, h in sorted(result.hosts.items()):
        lines.append(
            f"{host:<6} {h.applied_epoch:>4}/{h.desired_epoch:<4}"
            f"   {'ok' if h.pias_in_sync else 'DIVERGED':>6} "
            f"{'ok' if h.wcmp_in_sync else 'DIVERGED':>6} "
            f"{h.restarts:>9} {h.stale_rejections:>6}")
    ch = result.channel
    lines.append("")
    lines.append(
        f"channel: {ch['sent']} sent, {ch['retransmits']} "
        f"retransmits, {ch['acked']} acked, {ch['nacked']} nacked, "
        f"{ch['duplicates_dropped']} dups dropped")
    lines.append(
        f"faults:  {result.faults['dropped']} dropped, "
        f"{result.faults['duplicated']} duplicated, "
        f"{result.faults['partition_drops']} partition drops")
    lines.append(
        f"loops:   {result.reports_received} reports in, "
        f"{result.pias_updates} PIAS updates, "
        f"{result.wcmp_updates} WCMP updates, "
        f"{result.replays} desired-state replays")
    lines.append(f"final thresholds: {result.final_thresholds}")
    lines.append(f"final weights:    {result.final_weights}")
    lines.append(f"stale-epoch install rejected: "
                 f"{'yes' if result.stale_rejected else 'NO'}")
    lines.append(f"converged: {'yes' if result.converged else 'NO'}")
    return "\n".join(lines)

"""Figure 9: flow completion times under flow scheduling policies.

Paper setup (Section 5.1): a request-response workload whose response
sizes follow a search-application flow-size distribution; one worker
serves requests at roughly 70% load while other sources send
background traffic.  Priority thresholds split flows into small
(<10 KB), intermediate (10 KB-1 MB) and background classes.  Reported:
average and 95th-percentile FCT of small and intermediate flows for
{baseline, PIAS, SFF} x {native, EDEN}.

Configurations here:

* ``("baseline", "native")``  — vanilla stack, no enclave;
* ``("baseline", "eden")``    — enclave + classification + interpreted
  PIAS run on every packet, but packet outputs ignored (the paper's
  baseline-EDEN overhead configuration);
* ``("pias"|"sff", "native")`` — the policy hard-coded (natively
  compiled) in the enclave;
* ``("pias"|"sff", "eden")``   — the policy interpreted from bytecode.

The scenario is split into :func:`build_flow_scheduling` (construct
the network, stacks, enclaves and workloads — returns a
:class:`Fig9Scenario`) and :func:`run_flow_scheduling` (build, run to
completion, summarize).  Long-running consumers — the
``latency-serve`` scenario server — build once and drive the
simulation incrementally with :meth:`Fig9Scenario.advance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.workloads import (BulkSender, FlowSizeDistribution,
                              INTERMEDIATE_FLOW_MAX,
                              RequestResponseClient,
                              RequestResponseServer, SMALL_FLOW_MAX,
                              SinkServer, generic_app_stage,
                              make_registry)
from ..core.controller import Controller
from ..core.enclave import Enclave
from ..functions.pias import FlowSchedulingDeployment
from ..functions.pulsar import PulsarDeployment
from ..netsim.simulator import GBPS, MS, Simulator
from ..netsim.topology import star
from ..netsim.tracing import FlowTracker
from ..stack.netstack import HostStack

SERVICE_PORT = 9000
SINK_PORT = 9100
PRIORITY_THRESHOLDS = ((SMALL_FLOW_MAX, 7),
                       (INTERMEDIATE_FLOW_MAX, 6),
                       (1 << 50, 5))

#: Tenant id the background bulk senders use when Pulsar rate
#: limiting is enabled (``background_rate_bps``).
BACKGROUND_TENANT = 1


@dataclass
class Fig9Result:
    policy: str
    variant: str
    small_avg_us: float
    small_p95_us: float
    mid_avg_us: float
    mid_p95_us: float
    n_small: int
    n_mid: int
    requests: int
    background_mbps: float
    events: int = 0

    def row(self) -> str:
        return (f"{self.policy:<9} {self.variant:<7} "
                f"small: {self.small_avg_us:8.1f} / "
                f"{self.small_p95_us:8.1f} us (n={self.n_small:4d})  "
                f"intermediate: {self.mid_avg_us:9.1f} / "
                f"{self.mid_p95_us:9.1f} us (n={self.n_mid:3d})")


@dataclass
class Fig9Scenario:
    """A built (but not yet run) Figure 9 configuration.

    Drive it either with :meth:`run` (start workloads, simulate
    ``duration_ms``, stop) or incrementally: :meth:`start`, then
    repeated :meth:`advance` calls with a growing deadline — the
    basis of the live ``latency-serve`` scenario — then
    :meth:`finish` for the FCT summary.
    """

    policy: str
    variant: str
    net: object
    shards: int
    hosts: Dict[str, object]
    stacks: Dict[str, HostStack]
    controller: Controller
    tracker: FlowTracker
    client: RequestResponseClient
    bulk_senders: List[BulkSender]
    duration_ms: int
    warmup_ms: int
    link_bps: int
    events: int = 0
    _started: bool = field(default=False, repr=False)

    @property
    def now_ns(self) -> int:
        if self.shards > 0:
            return self.net.now
        return self.net.sim.now

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.client.start()

    def advance(self, until_ns: int) -> int:
        """Simulate up to ``until_ns``; returns events processed."""
        self.start()
        if self.shards > 0:
            done = self.net.run(until_ns=until_ns)
        else:
            done = self.net.sim.run(until_ns=until_ns)
        self.events += done
        return done

    def run(self) -> None:
        self.start()
        self.advance(self.duration_ms * MS)
        self.client.stop()

    def finish(self) -> Fig9Result:
        from ..netsim.tracing import mean, percentile
        cutoff = self.warmup_ms * MS
        small = [r.fct_us for r in self.tracker.records
                 if r.size_bytes < SMALL_FLOW_MAX and
                 r.started_at >= cutoff]
        mid = [r.fct_us for r in self.tracker.records
               if SMALL_FLOW_MAX <= r.size_bytes <
               INTERMEDIATE_FLOW_MAX and r.started_at >= cutoff]
        background_bytes = sum(b.bytes_completed
                               for b in self.bulk_senders)
        elapsed_ms = max(1, self.now_ns // MS)
        background_mbps = background_bytes * 8.0 / (elapsed_ms * 1e3)
        return Fig9Result(
            policy=self.policy, variant=self.variant,
            small_avg_us=mean(small),
            small_p95_us=percentile(small, 95),
            mid_avg_us=mean(mid), mid_p95_us=percentile(mid, 95),
            n_small=len(small), n_mid=len(mid),
            requests=self.client.responses_done,
            background_mbps=background_mbps,
            events=self.events)


def build_flow_scheduling(policy: str = "baseline",
                          variant: str = "native",
                          seed: int = 1,
                          duration_ms: int = 150,
                          load: float = 0.7,
                          link_bps: int = 10 * GBPS,
                          n_background: int = 2,
                          warmup_ms: int = 10,
                          shards: int = 0,
                          telemetry=None,
                          background_rate_bps: Optional[int] = None
                          ) -> Fig9Scenario:
    """Construct one Figure 9 configuration without running it.

    ``shards > 0`` builds on the sharded simulator
    (:mod:`repro.netsim.sharded`): hosts spread round-robin over that
    many shards, the ToR on the coordinator.  Per-host components then
    schedule on their own shard's heap (``host.sim``).  Results are
    statistically comparable but not bit-identical to the single-heap
    run — each shard draws from its own seeded RNG stream.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is bound to
    the network *and* the host stacks/enclaves, so metrics, spans and
    — when the telemetry carries a
    :class:`repro.latency.LatencyCollector` — per-packet latency
    decompositions all flow.

    ``background_rate_bps`` enables Pulsar rate control for the
    background bulk senders: they connect as tenant
    :data:`BACKGROUND_TENANT`, their hosts get the Pulsar action
    function and a token-bucket queue at that aggregate rate — which
    exercises the ``ratelimiter_queue`` latency segment.
    """
    if policy not in ("baseline", "pias", "sff"):
        raise ValueError(f"unknown policy {policy!r}")
    if variant not in ("native", "eden"):
        raise ValueError(f"unknown variant {variant!r}")

    # h1 = requesting client (and bulk sink), h2 = worker,
    # h3.. = background bulk senders.
    if shards > 0:
        from ..netsim.sharded import star_sharded
        net = star_sharded(2 + n_background, shards,
                           host_rate_bps=link_bps, seed=seed)
    else:
        net = star(Simulator(seed=seed), 2 + n_background,
                   host_rate_bps=link_bps)
    hosts = net.hosts
    if telemetry is not None:
        if shards > 0:
            net.bind_telemetry(telemetry)
        else:
            net.sim.bind_telemetry(telemetry)
        for host in hosts.values():
            host.bind_telemetry(telemetry)
    controller = Controller()

    needs_enclave = not (policy == "baseline" and variant == "native")
    backend = "interpreter" if variant == "eden" else "native"
    bg_hosts = [f"h{i + 3}" for i in range(n_background)]
    sender_hosts = ["h2"] + bg_hosts
    stacks: Dict[str, HostStack] = {}
    for name, host in hosts.items():
        enclave = None
        wants_enclave = (
            (needs_enclave and name in sender_hosts) or
            (background_rate_bps is not None and name in bg_hosts))
        if wants_enclave:
            enclave = Enclave(f"{name}.enclave",
                              clock=host.sim.clock, rng=host.sim.rng,
                              telemetry=telemetry)
            controller.register_enclave(name, enclave)
        stacks[name] = HostStack(host.sim, host, enclave=enclave,
                                 process_pure_acks=False,
                                 telemetry=telemetry)

    if needs_enclave:
        # With Pulsar on the background hosts, PIAS/SFF runs only at
        # the worker — both deployments install a "*" rule in table 0
        # and a host gets one policy, matching the paper's one-app-
        # per-sender setup.
        pias_hosts = (["h2"] if background_rate_bps is not None
                      else sender_hosts)
        # baseline-eden runs interpreted PIAS with outputs ignored.
        effective_policy = policy if policy != "baseline" else "pias"
        deployment = FlowSchedulingDeployment(
            controller, policy=effective_policy, backend=backend)
        deployment.install(pias_hosts, PRIORITY_THRESHOLDS)
        if policy == "baseline":
            for host_name in pias_hosts:
                fn = controller.enclave(host_name).function(
                    deployment.function_name)
                fn.commit_packet_writes = False

    if background_rate_bps is not None:
        pulsar = PulsarDeployment(controller, backend=backend)
        for name in bg_hosts:
            pulsar.install(name, stacks[name],
                           {BACKGROUND_TENANT: background_rate_bps})

    stage = generic_app_stage()
    # The controller programs the stage (paper Figure 6): classify
    # every message, exposing its id, declared size and desired
    # priority to the enclave.
    from ..core.stage import Classifier
    stage.create_stage_rule("r1", Classifier.of(), "msg",
                            ["msg_id", "msg_size", "priority"])
    registry = make_registry()
    tracker = FlowTracker()
    distribution = FlowSizeDistribution()

    def response_attrs(params: Dict[str, int]) -> Dict[str, object]:
        # PIAS: let demotion decide (priority metadata 7 = "manage
        # me"); SFF additionally declares the flow size.
        return {"priority": 7, "msg_size": params["size"]}

    RequestResponseServer(hosts["h2"].sim, stacks["h2"],
                          SERVICE_PORT, registry, stage=stage,
                          attrs_fn=response_attrs)
    arrivals = load * link_bps / (8.0 * distribution.mean())
    client = RequestResponseClient(
        hosts["h1"].sim, stacks["h1"], net.host_ip("h2"),
        SERVICE_PORT, registry, tracker, distribution=distribution,
        arrivals_per_sec=arrivals)

    SinkServer(stacks["h1"], SINK_PORT)
    bulk_senders: List[BulkSender] = []
    bg_tenant = (BACKGROUND_TENANT if background_rate_bps is not None
                 else 0)
    for name in bg_hosts:
        host = hosts[name]
        bulk_senders.append(BulkSender(
            host.sim, stacks[host.name], net.host_ip("h1"),
            SINK_PORT, stage=stage, low_priority=0,
            tenant=bg_tenant))

    return Fig9Scenario(
        policy=policy, variant=variant, net=net, shards=shards,
        hosts=hosts, stacks=stacks, controller=controller,
        tracker=tracker, client=client, bulk_senders=bulk_senders,
        duration_ms=duration_ms, warmup_ms=warmup_ms,
        link_bps=link_bps)


def run_flow_scheduling(policy: str = "baseline",
                        variant: str = "native",
                        seed: int = 1,
                        duration_ms: int = 150,
                        load: float = 0.7,
                        link_bps: int = 10 * GBPS,
                        n_background: int = 2,
                        warmup_ms: int = 10,
                        shards: int = 0,
                        telemetry=None,
                        background_rate_bps: Optional[int] = None
                        ) -> Fig9Result:
    """One Figure 9 configuration; returns FCT summaries."""
    scenario = build_flow_scheduling(
        policy=policy, variant=variant, seed=seed,
        duration_ms=duration_ms, load=load, link_bps=link_bps,
        n_background=n_background, warmup_ms=warmup_ms,
        shards=shards, telemetry=telemetry,
        background_rate_bps=background_rate_bps)
    scenario.run()
    return scenario.finish()


def run_all(seed: int = 1, duration_ms: int = 150,
            policies: Tuple[str, ...] = ("baseline", "pias", "sff"),
            variants: Tuple[str, ...] = ("native", "eden"),
            shards: int = 0) -> List[Fig9Result]:
    results = []
    for policy in policies:
        for variant in variants:
            results.append(run_flow_scheduling(
                policy=policy, variant=variant, seed=seed,
                duration_ms=duration_ms, shards=shards))
    return results


def format_results(results: List[Fig9Result]) -> str:
    lines = ["Figure 9 — flow completion times "
             "(avg / 95th percentile, microseconds)"]
    lines += [r.row() for r in results]
    return "\n".join(lines)

"""Per-packet latency decomposition versus offered load.

The figure the ``repro.latency`` subsystem exists to draw: for a
sweep of offered loads on the Figure 9 flow-scheduling scenario
(worker + Pulsar-limited background senders), where does each
packet's end-to-end delay go?  At low load the wire terms
(serialization + propagation) and the Eden data-path costs
(classification, match, execution) dominate; as load rises the
queueing terms — switch ports and the background tenant's token
bucket — take over, exactly the Section 5 story.

Every row also reports the ``unattributed`` residual, which the
decomposer computes as the closing term of the accounting identity:
it is exactly 0 for every packet on both simulator backends
(``--shards N`` runs the same sweep sharded), and
``tests/latency/test_breakdown.py`` holds it under 5% of the mean
end-to-end delay.

Reproduce with ``python -m repro.cli latency-breakdown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..latency.decompose import ALL_CLASSES, RESIDUAL
from ..latency.scenario import LatencyScenario, ServeConfig
from ..netsim.simulator import GBPS

DEFAULT_LOADS: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.9)

#: Short column headers for the text figure, data-path order.
_SHORT = {
    "stage_classify": "stage",
    "enclave_match": "match",
    "interpreter_execute": "exec",
    "host_queue": "hostq",
    "ratelimiter_queue": "rlq",
    "switch_queue": "swq",
    "link_serialization": "ser",
    "link_propagation": "prop",
    RESIDUAL: "unattr",
}


@dataclass
class BreakdownPoint:
    """One offered-load point of the sweep."""

    load: float
    packets: int
    e2e_mean_us: float
    e2e_p99_us: float
    segment_mean_us: Dict[str, float]
    residual_fraction: float

    def row(self) -> str:
        cols = " ".join(
            f"{self.segment_mean_us[cls]:8.2f}"
            for cls in ALL_CLASSES)
        return (f"{self.load:4.2f} {self.packets:8d} "
                f"{self.e2e_mean_us:9.2f} {self.e2e_p99_us:10.2f}  "
                f"{cols}")


def run_breakdown(loads: Sequence[float] = DEFAULT_LOADS,
                  policy: str = "pias", variant: str = "eden",
                  seed: int = 1, duration_ms: int = 120,
                  shards: int = 0,
                  background_rate_bps: Optional[int] = 2 * GBPS
                  ) -> List[BreakdownPoint]:
    """Sweep offered load, one full scenario per point."""
    points: List[BreakdownPoint] = []
    for load in loads:
        scenario = LatencyScenario(ServeConfig(
            policy=policy, variant=variant, seed=seed,
            duration_ms=duration_ms, load=load, shards=shards,
            background_rate_bps=background_rate_bps))
        scenario.run()
        scenario.finish()
        store = scenario.store
        e2e = store.e2e_histogram()
        residual_total = store.segment_histogram(RESIDUAL).total
        points.append(BreakdownPoint(
            load=load,
            packets=e2e.count,
            e2e_mean_us=e2e.mean / 1e3,
            e2e_p99_us=e2e.quantile(0.99) / 1e3,
            segment_mean_us={
                cls: store.segment_histogram(cls).mean / 1e3
                for cls in ALL_CLASSES},
            residual_fraction=(residual_total / e2e.total
                               if e2e.total else 0.0)))
    return points


def format_breakdown(points: List[BreakdownPoint],
                     policy: str = "pias",
                     variant: str = "eden",
                     shards: int = 0) -> str:
    """The text figure: one row per load, one column per segment."""
    backend = (f"sharded x{shards}" if shards else "single heap")
    header_cols = " ".join(f"{_SHORT[cls]:>8}" for cls in ALL_CLASSES)
    lines = [
        f"Latency decomposition vs offered load — {policy}/{variant} "
        f"({backend}); mean microseconds per packet",
        f"load  packets  mean e2e    p99 e2e  {header_cols}",
    ]
    lines += [p.row() for p in points]
    worst = max((p.residual_fraction for p in points), default=0.0)
    lines.append(f"worst unattributed residual: {worst:.3%} of the "
                 f"mean e2e delay")
    return "\n".join(lines)

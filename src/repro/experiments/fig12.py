"""Figure 12: CPU overhead of the Eden components.

Paper setup (Section 5.4): 12 long-running TCP flows saturating a
10 Gbps link under the SFF policy; reported is the CPU overhead of
each Eden component — *API* (passing metadata to the enclave),
*enclave* (classification match + state management), *interpreter*
(bytecode execution) — relative to the vanilla TCP stack, at the mean
and the 95th percentile.

Here the buckets are wall-clock samples per packet collected by
:class:`repro.core.accounting.CpuAccounting`; the vanilla baseline is
the measured cost of the stack's send path with no enclave.  Being a
Python interpreter interpreting bytecode, the absolute percentages are
far larger than the paper's — the claim under test is the
decomposition and ordering, not the absolute numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..apps.workloads import SinkServer, generic_app_stage
from ..core.accounting import CpuAccounting
from ..core.controller import Controller
from ..core.enclave import Enclave
from ..functions.pias import FlowSchedulingDeployment
from ..netsim.simulator import GBPS, MS, Simulator
from ..netsim.topology import star
from ..stack.netstack import HostStack
from ..transport.sockets import MessageSocket
from .fig9 import PRIORITY_THRESHOLDS

SINK_PORT = 9300
CHUNK = 2_000_000
N_FLOWS = 12


@dataclass
class Fig12Result:
    #: bucket -> (mean %, 95th percentile %) relative to vanilla
    overhead_pct: Dict[str, Tuple[float, float]]
    vanilla_ns_per_packet: float
    packets: int

    def rows(self) -> List[str]:
        out = []
        for bucket in ("api", "enclave", "interpreter"):
            avg, p95 = self.overhead_pct.get(bucket, (0.0, 0.0))
            out.append(f"{bucket:<12} avg {avg:7.1f}%   "
                       f"95th {p95:7.1f}%")
        return out


def _run_flows(sim: Simulator, s1: HostStack, s2: HostStack,
               server_ip: int, duration_ms: int, stage) -> int:
    SinkServer(s2, SINK_PORT)

    def make_refill(sock: MessageSocket):
        def refill(record, now):
            sock.send(CHUNK,
                      attrs={"msg_type": "bulk", "priority": 7,
                             "msg_size": CHUNK},
                      on_complete=refill)
        return refill

    for _ in range(N_FLOWS):
        conn = s1.connect(server_ip, SINK_PORT)
        socket = MessageSocket(conn, stage)
        refill = make_refill(socket)
        conn.on_established = (
            lambda c, r=refill, s=socket: s.send(
                CHUNK, attrs={"msg_type": "bulk", "priority": 7,
                              "msg_size": CHUNK}, on_complete=r))
    sim.run(until_ns=duration_ms * MS)
    return s1.packets_sent


def measure_vanilla_ns(seed: int = 1,
                       duration_ms: int = 30) -> Tuple[float, int]:
    """Wall-clock cost per packet of the vanilla (no-enclave) send
    path."""
    sim = Simulator(seed=seed)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    s1 = HostStack(sim, net.hosts["h1"])
    s2 = HostStack(sim, net.hosts["h2"])
    stage = generic_app_stage()

    original = s1.send_packet
    samples: List[int] = []

    def timed(packet, pure_ack=False):
        t0 = time.perf_counter_ns()
        original(packet, pure_ack=pure_ack)
        samples.append(time.perf_counter_ns() - t0)

    s1.send_packet = timed
    _run_flows(sim, s1, s2, net.host_ip("h2"), duration_ms, stage)
    if not samples:
        return 0.0, 0
    return sum(samples) / len(samples), len(samples)


def run_overheads(seed: int = 1, duration_ms: int = 30,
                  policy: str = "sff") -> Fig12Result:
    """Measure per-bucket CPU cost relative to the vanilla stack."""
    vanilla_ns, _ = measure_vanilla_ns(seed=seed,
                                       duration_ms=duration_ms)

    sim = Simulator(seed=seed)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    accounting = CpuAccounting(enabled=True)
    controller = Controller()
    enclave = Enclave("h1.enclave", clock=sim.clock, rng=sim.rng,
                      accounting=accounting)
    controller.register_enclave("h1", enclave)
    s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                   accounting=accounting, process_pure_acks=False)
    s2 = HostStack(sim, net.hosts["h2"])
    deployment = FlowSchedulingDeployment(controller, policy=policy)
    deployment.install(["h1"], PRIORITY_THRESHOLDS)

    stage = generic_app_stage()
    packets = _run_flows(sim, s1, s2, net.host_ip("h2"), duration_ms,
                         stage)

    overhead: Dict[str, Tuple[float, float]] = {}
    for bucket in ("api", "enclave", "interpreter"):
        if vanilla_ns <= 0:
            overhead[bucket] = (0.0, 0.0)
            continue
        # Per-packet cost: the enclave bucket records several samples
        # per packet (match, prep, commit), so aggregate per packet by
        # total/packets for the mean; the p95 uses per-sample values
        # scaled by samples-per-packet.
        totals = accounting.totals()[bucket]
        count = accounting.counts()[bucket]
        per_packet_mean = totals / max(1, packets)
        per_sample_p95 = accounting.percentile_ns(bucket, 95.0)
        samples_per_packet = count / max(1, packets)
        per_packet_p95 = per_sample_p95 * samples_per_packet
        overhead[bucket] = (100.0 * per_packet_mean / vanilla_ns,
                            100.0 * per_packet_p95 / vanilla_ns)
    return Fig12Result(overhead_pct=overhead,
                       vanilla_ns_per_packet=vanilla_ns,
                       packets=packets)


def format_result(result: Fig12Result) -> str:
    lines = ["Figure 12 — CPU overhead of Eden components vs the "
             "vanilla stack",
             f"(vanilla send path: "
             f"{result.vanilla_ns_per_packet:.0f} ns/packet, "
             f"{result.packets} packets)"]
    lines += result.rows()
    return "\n".join(lines)

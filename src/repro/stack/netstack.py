"""The end-host network stack with the Eden enclave at its bottom.

Mirrors Figure 5 of the paper.  On transmit, a packet produced by the
transport (already tagged with its message's class and metadata — the
*API* step of Section 4.2) passes through the enclave's match-action
pipeline, then through any rate-limited queue the action functions
selected, and finally out of the NIC port chosen by the packet's path
label.  On receive, packets are optionally run through the enclave
(needed by receive-side functions such as stateful firewalls) and
demultiplexed to TCP connections or listeners.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..core.accounting import CpuAccounting
from ..core.enclave import Enclave
from ..netsim.packet import FLAG_SYN, Packet, PROTO_TCP
from ..netsim.simulator import Simulator
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..transport.tcp import TcpConnection
from .ratelimiter import RateLimiterBank


class StackError(Exception):
    """The host stack was misconfigured or misused."""


class HostStack:
    """Transport + Eden data path of one end host."""

    def __init__(self, sim: Simulator, host,
                 enclave: Optional[Enclave] = None,
                 accounting: Optional[CpuAccounting] = None,
                 process_rx: bool = False,
                 process_pure_acks: bool = True,
                 stack_latency_ns: int = 300,
                 interpreter_ns_per_op: int = 12,
                 native_action_cost_ns: int = 150,
                 batch_data_path: bool = False,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.sim = sim
        self.host = host
        self.enclave = enclave
        self.accounting = accounting or CpuAccounting(enabled=False)
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        #: Latency-decomposition sink (repro.latency); None means the
        #: per-packet hooks below reduce to one comparison.
        self._lat = getattr(self.telemetry, "latency", None)
        registry = self.telemetry.registry
        self._m_tx = registry.counter("stack_packets_sent_total",
                                      host=host.name)
        self._m_enclave_drops = registry.counter(
            "stack_enclave_drops_total", host=host.name)
        self._m_to_controller = registry.counter(
            "stack_to_controller_total", host=host.name)
        self.process_rx = process_rx
        self.process_pure_acks = process_pure_acks
        # Simulated per-packet processing costs (Section 5.4's CPU
        # overheads translated into data-path latency): the vanilla
        # stack cost, the per-bytecode-op interpreter cost, and the
        # cost of one natively compiled action.
        self.stack_latency_ns = stack_latency_ns
        self.interpreter_ns_per_op = interpreter_ns_per_op
        self.native_action_cost_ns = native_action_cost_ns
        self._last_emit_at = 0
        # Batched data path (opt-in): packets sent or received in the
        # same simulated tick are coalesced by a zero-delay flush
        # event and run through Enclave.process_batch in one go.
        # Per-packet delays, ordering, and enclave state are identical
        # to the scalar path; only the per-packet setup cost is
        # amortized.
        self.batch_data_path = batch_data_path
        self._tx_pending: List[Tuple[Packet, bool]] = []
        self._tx_flush_scheduled = False
        self._rx_pending: List[Packet] = []
        self._rx_flush_scheduled = False
        self.rate_limiters = RateLimiterBank(sim, self._emit,
                                             telemetry=telemetry)
        self._connections: Dict[Tuple, TcpConnection] = {}
        self._listeners: Dict[int, Callable] = {}
        self._ephemeral_ports = itertools.count(40_000)
        #: path label -> neighbor name; label 0 / unmapped labels use
        #: :attr:`default_peer` if set, else the first attached port.
        self.path_port_map: Dict[int, str] = {}
        self.default_peer: Optional[str] = None
        self.packets_sent = 0
        self.packets_dropped_by_enclave = 0
        self.packets_to_controller = 0
        host.bind_stack(self)

    @property
    def ip(self) -> int:
        return self.host.ip

    # -- connection management ------------------------------------------------

    def listen(self, port: int,
               on_connection: Callable[[TcpConnection], None]) -> None:
        """Accept connections on ``port``; the callback receives each
        new connection before its SYN is processed."""
        if port in self._listeners:
            raise StackError(f"port {port} already has a listener")
        self._listeners[port] = on_connection

    def connect(self, remote_ip: int, remote_port: int,
                local_port: Optional[int] = None,
                tenant: int = 0) -> TcpConnection:
        """Actively open a TCP connection."""
        if local_port is None:
            local_port = next(self._ephemeral_ports)
        conn = TcpConnection(self.sim, self, self.ip, local_port,
                             remote_ip, remote_port, tenant=tenant)
        key = conn.five_tuple
        if key in self._connections:
            raise StackError(f"connection {key} already exists")
        self._connections[key] = conn
        conn.connect()
        return conn

    def connection_done(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.five_tuple, None)

    def connections(self) -> List[TcpConnection]:
        return list(self._connections.values())

    # -- transmit path ---------------------------------------------------------

    def send_packet(self, packet: Packet,
                    pure_ack: bool = False) -> None:
        """TX entry point used by the transport."""
        if self.batch_data_path:
            self._tx_pending.append((packet, pure_ack))
            if not self._tx_flush_scheduled:
                self._tx_flush_scheduled = True
                self.sim.schedule(0, self._flush_tx)
            return
        t0 = self.accounting.now()
        # The "API" step: metadata already attached by the transport's
        # message bookkeeping travels with the packet into the enclave.
        classifications = packet.classifications
        self.accounting.record("api", self.accounting.now() - t0)

        result = None
        match_ns = exec_ns = 0
        if self.enclave is not None and \
                (self.process_pure_acks or not pure_ack):
            result = self.enclave.process_packet(
                packet, classifications, now_ns=self.sim.now)
            if self._finish_tx_result(packet, result):
                if self._lat is not None:
                    self._lat.packet_dropped(packet.packet_id)
                return
            match_ns, exec_ns = self._enclave_delay_parts(result)
        emit_at = self._schedule_emit(
            packet, self.stack_latency_ns + match_ns + exec_ns)
        if self._lat is not None:
            self._lat.stack_sent(
                packet, self.sim.now, emit_at,
                self.stack_latency_ns, match_ns, exec_ns,
                result.executed if result is not None else ())

    def _enclave_delay_parts(self, result) -> Tuple[int, int]:
        """(match, execute) components of the enclave's modeled
        per-packet data-path delay: the placement's base cost for the
        match-action lookup, then either interpreted bytecode ops or
        natively compiled actions."""
        match_ns = self.enclave.per_packet_base_cost_ns
        if result.interpreter_ops:
            exec_ns = (result.interpreter_ops *
                       self.interpreter_ns_per_op)
        else:
            exec_ns = len(result.executed) * self.native_action_cost_ns
        return match_ns, exec_ns

    def _enclave_delay_ns(self, result) -> int:
        match_ns, exec_ns = self._enclave_delay_parts(result)
        return match_ns + exec_ns

    def _finish_tx_result(self, packet: Packet, result) -> bool:
        """Per-packet TX bookkeeping; True means the packet stops."""
        if result.to_controller:
            self.packets_to_controller += 1
            self._m_to_controller.inc()
        if result.drop:
            self.packets_dropped_by_enclave += 1
            self._m_enclave_drops.inc()
            return True
        return False

    def _schedule_emit(self, packet: Packet, delay: int) -> int:
        # Per-packet processing delay; clamped monotonic so the stack
        # never reorders its own transmissions.
        emit_at = max(self.sim.now + delay, self._last_emit_at)
        self._last_emit_at = emit_at
        self.sim.at(emit_at, self.rate_limiters.submit, packet)
        return emit_at

    def _flush_tx(self) -> None:
        """Zero-delay flush: process the tick's TX backlog as one
        enclave batch, then hand same-release-time packets to the rate
        limiters as one :meth:`RateLimiterBank.submit_batch`.

        Per-packet results — writes, drops, delays, emission order —
        match the scalar path exactly; a packet whose invocation hits
        a :class:`ConcurrencyViolation` is forwarded unmodified, the
        same isolation the enclave applies to interpreter faults.
        """
        self._tx_flush_scheduled = False
        pending, self._tx_pending = self._tx_pending, []
        if not pending:
            return
        now = self.sim.now
        results: List[Optional[object]] = [None] * len(pending)
        if self.enclave is not None:
            batch = []
            slots = []
            for i, (packet, pure_ack) in enumerate(pending):
                if self.process_pure_acks or not pure_ack:
                    batch.append((packet, packet.classifications))
                    slots.append(i)
            for i, result in zip(slots, self.enclave.process_batch(
                    batch, now_ns=now)):
                results[i] = result
        # emit_at is monotonic across the batch, so packets sharing a
        # release time form runs — each run becomes one batched rate
        # limiter submission.
        run_at = -1
        run: List[Packet] = []
        for i, (packet, _pure_ack) in enumerate(pending):
            result = results[i]
            match_ns = exec_ns = 0
            if result is not None:
                if self._finish_tx_result(packet, result):
                    if self._lat is not None:
                        self._lat.packet_dropped(packet.packet_id)
                    continue
                match_ns, exec_ns = self._enclave_delay_parts(result)
            delay = self.stack_latency_ns + match_ns + exec_ns
            emit_at = max(now + delay, self._last_emit_at)
            self._last_emit_at = emit_at
            if self._lat is not None:
                self._lat.stack_sent(
                    packet, now, emit_at, self.stack_latency_ns,
                    match_ns, exec_ns,
                    result.executed if result is not None else ())
            if emit_at != run_at:
                if run:
                    self.sim.at(run_at,
                                self.rate_limiters.submit_batch, run)
                run_at = emit_at
                run = []
            run.append(packet)
        if run:
            self.sim.at(run_at, self.rate_limiters.submit_batch, run)

    def _emit(self, packet: Packet) -> None:
        """Hand a packet to the NIC port selected by its path label."""
        port = None
        if packet.path_id and packet.path_id in self.path_port_map:
            port = self.host.port_to(
                self.path_port_map[packet.path_id])
        elif self.default_peer is not None:
            port = self.host.port_to(self.default_peer)
        elif self.host.ports:
            port = self.host.ports[0]
        if port is None:
            raise StackError(
                f"host {self.host.name} has no port for packet "
                f"{packet!r}")
        self.packets_sent += 1
        self._m_tx.inc()
        port.enqueue(packet)

    # -- receive path ------------------------------------------------------------

    def handle_rx(self, packet: Packet, from_port) -> None:
        if packet.dst_ip != self.ip:
            return  # not ours; hosts do not forward
        if self.enclave is not None and self.process_rx:
            if self.batch_data_path:
                self._rx_pending.append(packet)
                if not self._rx_flush_scheduled:
                    self._rx_flush_scheduled = True
                    self.sim.schedule(0, self._flush_rx)
                return
            result = self.enclave.process_packet(
                packet, packet.classifications, now_ns=self.sim.now)
            if result.drop:
                return
        self._deliver_rx(packet)

    def _flush_rx(self) -> None:
        """Zero-delay flush: run the tick's RX backlog through the
        enclave as one batch, delivering survivors in arrival order."""
        self._rx_flush_scheduled = False
        pending, self._rx_pending = self._rx_pending, []
        if not pending:
            return
        results = self.enclave.process_batch(
            [(p, p.classifications) for p in pending],
            now_ns=self.sim.now)
        for packet, result in zip(pending, results):
            if result.drop:
                continue
            self._deliver_rx(packet)

    def _deliver_rx(self, packet: Packet) -> None:
        """Demultiplex one received packet to its connection."""
        key = packet.reverse_five_tuple
        conn = self._connections.get(key)
        if conn is None:
            if packet.flags & FLAG_SYN and \
                    packet.dst_port in self._listeners and \
                    packet.proto == PROTO_TCP:
                conn = TcpConnection(
                    self.sim, self, self.ip, packet.dst_port,
                    packet.src_ip, packet.src_port,
                    tenant=packet.tenant)
                self._connections[key] = conn
                self._listeners[packet.dst_port](conn)
            else:
                return  # no connection, no listener: silently dropped
        conn.handle_packet(packet)

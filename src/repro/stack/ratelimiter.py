"""Token-bucket rate limiters for the end-host stack.

Pulsar's data-plane function (paper Figure 3) sends each packet "to
queue queueMap[packet.tenant] and charge[s] it size bytes" — where the
charge is the *operation* size for READs and the packet size otherwise.
These are those queues: each :class:`RateLimitedQueue` is a token
bucket whose tokens are bytes, draining a FIFO of packets; the charge
of a packet is taken from ``packet.charge_bytes`` (action functions set
``packet.charge`` to override the default of the wire size).
"""

from __future__ import annotations

from collections import deque
from typing import (Callable, Deque, Dict, List, Optional, Sequence,
                    Tuple)

from ..netsim.packet import Packet
from ..netsim.simulator import SEC, Simulator
from ..telemetry import NULL_TELEMETRY


class RateLimitedQueue:
    """A byte token bucket in front of a FIFO of packets."""

    def __init__(self, sim: Simulator, name: str, rate_bps: int,
                 burst_bytes: int,
                 forward: Callable[[Packet], None],
                 max_queue_bytes: int = 4_000_000,
                 telemetry=None) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.forward = forward
        self.max_queue_bytes = max_queue_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = sim.now
        self._queue: Deque[Tuple[Packet, int]] = deque()
        self._queued_bytes = 0
        self._drain_event = None
        self.enqueued = 0
        self.forwarded = 0
        self.dropped = 0
        self.charged_bytes = 0
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Latency-decomposition sink (repro.latency): enqueue/release
        #: timestamps keyed by packet id; None is a no-op path.
        self._lat = getattr(tel, "latency", None)
        registry = tel.registry
        self._m_enqueued = registry.counter(
            "ratelimiter_enqueued_total", queue=name)
        self._m_forwarded = registry.counter(
            "ratelimiter_forwarded_total", queue=name)
        self._m_dropped = registry.counter(
            "ratelimiter_dropped_total", queue=name)
        self._h_charge = registry.histogram(
            "ratelimiter_charge_bytes", queue=name)
        self._g_backlog = registry.gauge(
            "ratelimiter_backlog_bytes", queue=name)

    def set_rate(self, rate_bps: int) -> None:
        """Controller update of the queue's rate."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._refill()
        self.rate_bps = rate_bps
        self._reschedule()

    def submit(self, packet: Packet) -> bool:
        """Queue a packet; False means the queue overflowed."""
        charge = packet.charge_bytes
        if self._queued_bytes + packet.size > self.max_queue_bytes:
            self.dropped += 1
            self._m_dropped.inc()
            if self._lat is not None:
                self._lat.packet_dropped(packet.packet_id)
            return False
        self._queue.append((packet, charge))
        self._queued_bytes += packet.size
        self.enqueued += 1
        self._m_enqueued.inc()
        if self._lat is not None:
            self._lat.rlq_enqueued(packet.packet_id, self.sim.now,
                                   self.name)
        self._drain()
        self._g_backlog.set(self._queued_bytes)
        return True

    def submit_batch(self, packets: Sequence[Packet]) -> List[bool]:
        """Admit many same-tick packets with one token computation.

        Equivalent to ``[self.submit(p) for p in packets]`` — same
        admission decisions, same forwarded packets in the same order,
        same token balance, same release time for whatever stays
        queued (``tests/stack/test_ratelimiter_batch.py``) — but the
        bucket refill, the backlog gauge update and the drain-timer
        reschedule happen once per batch instead of once per packet.
        Admission and draining still interleave per packet because a
        drain can free queue space that changes a later packet's
        overflow check.
        """
        self._refill()
        out: List[bool] = []
        for packet in packets:
            charge = packet.charge_bytes
            if self._queued_bytes + packet.size > self.max_queue_bytes:
                self.dropped += 1
                self._m_dropped.inc()
                if self._lat is not None:
                    self._lat.packet_dropped(packet.packet_id)
                out.append(False)
                continue
            self._queue.append((packet, charge))
            self._queued_bytes += packet.size
            self.enqueued += 1
            self._m_enqueued.inc()
            if self._lat is not None:
                self._lat.rlq_enqueued(packet.packet_id, self.sim.now,
                                       self.name)
            self._drain_ready()
            out.append(True)
        self._g_backlog.set(self._queued_bytes)
        self._reschedule()
        return out

    @property
    def backlog_bytes(self) -> int:
        return self._queued_bytes

    def _refill(self) -> None:
        elapsed = self.sim.now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + elapsed * self.rate_bps / (8.0 * SEC))
            self._last_refill = self.sim.now

    def _drain(self) -> None:
        self._refill()
        self._drain_ready()
        self._g_backlog.set(self._queued_bytes)
        self._reschedule()

    def _drain_ready(self) -> None:
        """Forward packets while the bucket covers the head charge."""
        while self._queue:
            packet, charge = self._queue[0]
            if charge > self.burst_bytes:
                # A charge above the bucket capacity can never gather
                # enough tokens: drop it rather than wedge the queue.
                self._queue.popleft()
                self._queued_bytes -= packet.size
                self.dropped += 1
                self._m_dropped.inc()
                if self._lat is not None:
                    self._lat.packet_dropped(packet.packet_id)
                continue
            if charge > self._tokens:
                break
            self._queue.popleft()
            self._queued_bytes -= packet.size
            self._tokens -= charge
            self.charged_bytes += charge
            self.forwarded += 1
            self._m_forwarded.inc()
            self._h_charge.observe(charge)
            if self._lat is not None:
                self._lat.rlq_released(packet.packet_id, self.sim.now)
            self.forward(packet)

    def _reschedule(self) -> None:
        if self._drain_event is not None:
            self._drain_event.cancel()
            self._drain_event = None
        if not self._queue:
            return
        _, charge = self._queue[0]
        deficit = charge - self._tokens
        wait_ns = max(1, int(deficit * 8 * SEC / self.rate_bps))
        self._drain_event = self.sim.schedule(wait_ns, self._drain)


class RateLimiterBank:
    """The set of rate-limited queues of one host, keyed by queue id.

    Queue id 0 is "no rate limiting" by convention; action functions
    steer packets by writing ``packet.queue_id``.
    """

    def __init__(self, sim: Simulator,
                 forward: Callable[[Packet], None],
                 telemetry=None) -> None:
        self.sim = sim
        self.forward = forward
        self.telemetry = telemetry
        self._queues: Dict[int, RateLimitedQueue] = {}

    def configure(self, queue_id: int, rate_bps: int,
                  burst_bytes: int = 100_000) -> RateLimitedQueue:
        if queue_id == 0:
            raise ValueError("queue id 0 means 'not rate limited'")
        queue = self._queues.get(queue_id)
        if queue is None:
            queue = RateLimitedQueue(
                self.sim, f"rlq{queue_id}", rate_bps, burst_bytes,
                self.forward, telemetry=self.telemetry)
            self._queues[queue_id] = queue
        else:
            queue.set_rate(rate_bps)
        return queue

    def queue(self, queue_id: int) -> Optional[RateLimitedQueue]:
        return self._queues.get(queue_id)

    def submit(self, packet: Packet) -> bool:
        """Route a packet to its queue; unknown ids pass through."""
        queue = self._queues.get(packet.queue_id)
        if queue is None:
            self.forward(packet)
            return True
        return queue.submit(packet)

    def submit_batch(self, packets: Sequence[Packet]) -> List[bool]:
        """Route a same-tick batch, admitting each run of packets
        bound for the same queue with one token computation.

        Forwarding order is identical to submitting the packets one by
        one: runs are split exactly where ``queue_id`` changes, so a
        pass-through packet between two rate-limited ones still leaves
        in between.
        """
        out: List[bool] = []
        i, n = 0, len(packets)
        while i < n:
            qid = packets[i].queue_id
            j = i + 1
            while j < n and packets[j].queue_id == qid:
                j += 1
            queue = self._queues.get(qid)
            if queue is None:
                for k in range(i, j):
                    self.forward(packets[k])
                    out.append(True)
            else:
                out.extend(queue.submit_batch(packets[i:j]))
            i = j
        return out

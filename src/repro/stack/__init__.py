"""End-host network stack: TX/RX paths, enclave hook, rate limiters."""

from .netstack import HostStack, StackError
from .ratelimiter import RateLimitedQueue, RateLimiterBank

__all__ = ["HostStack", "RateLimitedQueue", "RateLimiterBank",
           "StackError"]

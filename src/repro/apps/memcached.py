"""A memcached-like key-value application (the paper's running
example).

The client issues GET and PUT operations over TCP; every operation is
one Eden *message*, classified by the memcached stage of Table 2 on
``<msg_type, key>`` with ``{msg_id, msg_type, key, msg_size}``
metadata.  A GET's response carries the value size; a PUT carries the
value to the server and gets a small ack.

Values are sized, not stored byte-for-byte: the server keeps a map
from key to value size, which is all the simulator needs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.stage import Stage, memcached_stage
from ..netsim.simulator import Simulator
from ..stack.netstack import HostStack
from ..transport.sockets import MessageSocket
from ..transport.tcp import TcpConnection

GET_REQUEST_BYTES = 64
PUT_ACK_BYTES = 8
DEFAULT_PORT = 11211


def key_hash(key: str) -> int:
    """A deterministic non-negative hash of a key (FNV-1a, 32-bit)."""
    h = 0x811C9DC5
    for ch in key.encode():
        h ^= ch
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


class MemcachedServer:
    """Stores key -> value-size and answers GET/PUT messages."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 port: int = DEFAULT_PORT,
                 stage: Optional[Stage] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.stage = stage
        self.store: Dict[str, int] = {}
        self.gets = 0
        self.puts = 0
        self._registry: Dict[Tuple, Tuple[str, str, int]] = {}
        stack.listen(port, self._on_connection)

    def register_op(self, flow_key: Tuple, op: str, key: str,
                    size: int) -> None:
        """Side channel for request parameters (no payload bytes in
        the simulator); keyed by the client connection's five-tuple."""
        self._registry[flow_key] = (op, key, size)

    def _on_connection(self, conn: TcpConnection) -> None:
        state = {"consumed": 0}

        def on_data(c: TcpConnection, delivered: int) -> None:
            flow_key = (c.remote_ip, c.remote_port, c.local_ip,
                        c.local_port, 6)
            op_info = self._registry.get(flow_key)
            if op_info is None:
                return
            op, key, size = op_info
            expected = GET_REQUEST_BYTES if op == "GET" else size
            if delivered - state["consumed"] < expected:
                return
            state["consumed"] += expected
            del self._registry[flow_key]
            socket = MessageSocket(c, self.stage)
            if op == "GET":
                self.gets += 1
                value_size = self.store.get(key, 128)
                socket.send(value_size,
                            attrs={"msg_type": "GET_RESPONSE",
                                   "key": key,
                                   "msg_size": value_size})
            else:
                self.puts += 1
                self.store[key] = size
                socket.send(PUT_ACK_BYTES,
                            attrs={"msg_type": "PUT_ACK", "key": key})
            c.close()

        conn.on_data = on_data


class MemcachedClient:
    """Issues one GET or PUT per connection, memcached-stage
    classified."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 server: MemcachedServer, server_ip: int,
                 port: int = DEFAULT_PORT,
                 stage: Optional[Stage] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.server = server
        self.server_ip = server_ip
        self.port = port
        self.stage = stage if stage is not None else memcached_stage()
        self.completed: Dict[str, int] = {"GET": 0, "PUT": 0}

    def get(self, key: str,
            on_value: Optional[Callable[[str, int, int], None]] = None
            ) -> TcpConnection:
        """GET ``key``; ``on_value(key, size, fct_ns)`` on completion."""
        conn = self.stack.connect(self.server_ip, self.port)
        self.server.register_op(conn.five_tuple, "GET", key, 0)
        started = self.sim.now
        expected = self.server.store.get(key, 128)

        def on_data(c: TcpConnection, delivered: int) -> None:
            if delivered >= expected:
                self.completed["GET"] += 1
                if on_value:
                    on_value(key, expected, self.sim.now - started)
                c.close()

        conn.on_data = on_data
        socket = MessageSocket(conn, self.stage)
        socket.send(GET_REQUEST_BYTES,
                    attrs={"msg_type": "GET", "key": key,
                           "key_hash": key_hash(key)})
        return conn

    def put(self, key: str, value_size: int,
            on_ack: Optional[Callable[[str, int], None]] = None
            ) -> TcpConnection:
        """PUT ``value_size`` bytes under ``key``."""
        conn = self.stack.connect(self.server_ip, self.port)
        self.server.register_op(conn.five_tuple, "PUT", key,
                                value_size)
        started = self.sim.now

        def on_data(c: TcpConnection, delivered: int) -> None:
            if delivered >= PUT_ACK_BYTES:
                self.completed["PUT"] += 1
                if on_ack:
                    on_ack(key, self.sim.now - started)
                c.close()

        conn.on_data = on_data
        socket = MessageSocket(conn, self.stage)
        socket.send(value_size,
                    attrs={"msg_type": "PUT", "key": key,
                           "key_hash": key_hash(key),
                           "msg_size": value_size})
        return conn

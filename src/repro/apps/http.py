"""An HTTP-library stage and a tiny web workload (paper Table 2).

The HTTP library classifies on ``<msg_type, url>`` and can emit
``{msg_id, msg_type, url, msg_size}`` metadata.  The server maps URLs
to response sizes; the client fetches URLs, one request per
connection, and reports per-fetch latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..core.stage import Stage, http_stage
from ..netsim.simulator import Simulator
from ..stack.netstack import HostStack
from ..transport.sockets import MessageSocket
from ..transport.tcp import TcpConnection

REQUEST_BYTES = 200
DEFAULT_PORT = 80


class HttpServer:
    """Serves URL -> sized responses."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 port: int = DEFAULT_PORT,
                 stage: Optional[Stage] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.stage = stage
        self.site: Dict[str, int] = {"/": 10_000}
        self.requests = 0
        self._registry: Dict[Tuple, str] = {}
        stack.listen(port, self._on_connection)

    def add_resource(self, url: str, size: int) -> None:
        self.site[url] = size

    def register_request(self, flow_key: Tuple, url: str) -> None:
        self._registry[flow_key] = url

    def _on_connection(self, conn: TcpConnection) -> None:
        def on_data(c: TcpConnection, delivered: int) -> None:
            if delivered < REQUEST_BYTES or c.stats.bytes_sent > 0:
                return
            flow_key = (c.remote_ip, c.remote_port, c.local_ip,
                        c.local_port, 6)
            url = self._registry.pop(flow_key, "/")
            size = self.site.get(url, 1000)
            self.requests += 1
            socket = MessageSocket(c, self.stage)
            socket.send(size, attrs={"msg_type": "RESPONSE",
                                     "url": url, "msg_size": size})
            c.close()

        conn.on_data = on_data


class HttpClient:
    """Fetches URLs through the HTTP-library stage."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 server: HttpServer, server_ip: int,
                 port: int = DEFAULT_PORT,
                 stage: Optional[Stage] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.server = server
        self.server_ip = server_ip
        self.port = port
        self.stage = stage if stage is not None else http_stage()
        self.fetches_done = 0

    def fetch(self, url: str,
              on_done: Optional[Callable[[str, int, int],
                                         None]] = None
              ) -> TcpConnection:
        """Fetch ``url``; ``on_done(url, size, latency_ns)`` fires when
        the full response arrived."""
        conn = self.stack.connect(self.server_ip, self.port)
        self.server.register_request(conn.five_tuple, url)
        expected = self.server.site.get(url, 1000)
        started = self.sim.now

        def on_data(c: TcpConnection, delivered: int) -> None:
            if delivered >= expected:
                self.fetches_done += 1
                if on_done:
                    on_done(url, expected, self.sim.now - started)
                c.close()

        conn.on_data = on_data
        socket = MessageSocket(conn, self.stage)
        socket.send(REQUEST_BYTES,
                    attrs={"msg_type": "GET", "url": url})
        return conn

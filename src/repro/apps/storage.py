"""The storage application of the Pulsar case study (Section 5.3).

"The experiment involves two tenants running our custom application
that generates 64K IOs.  One of the tenants generates READ requests
while the other one WRITEs to a storage server backed by a RAM disk
drive.  The storage server is connected to our testbed through a 1Gbps
link."

The model:

* The server executes IOs serially from a FIFO — the *shared resource*.
  Each IO costs a fixed per-op overhead plus size/backend_rate (the RAM
  disk).  READ requests are tiny on the forward path, so a READ tenant
  can flood this queue far faster than a WRITE tenant, whose requests
  each carry 64 KB across the wire first — exactly the asymmetry the
  paper describes ("READs are small on the forward path and manage to
  fill the queues in shared resources").
* Clients keep a fixed number of IOs outstanding per tenant and record
  completed bytes for throughput.

Pulsar's remedy — charging a READ *request* by its operation size at
the client's rate limiter — is applied by the enclave function in
:mod:`repro.functions.pulsar`; this module only provides the traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..core.stage import Stage
from ..netsim.simulator import SEC, Simulator, US
from ..netsim.tracing import ThroughputMeter
from ..stack.netstack import HostStack
from ..transport.sockets import MessageSocket
from ..transport.tcp import TcpConnection

IO_SIZE = 64 * 1024           # "64K IOs"
REQUEST_BYTES = 256           # READ request / WRITE ack on the wire
OP_READ = 1
OP_WRITE = 2


#: Default service ports: READ requests and WRITE data arrive on
#: different ports so the server can frame each byte stream.
READ_PORT = 7000
WRITE_PORT = 7001


class StorageServer:
    """A storage server with a serial IO backend behind its NIC.

    READ and WRITE traffic arrive on separate service ports (framing:
    a READ op is a :data:`REQUEST_BYTES` request; a WRITE op is
    ``io_size`` bytes of data).
    """

    def __init__(self, sim: Simulator, stack: HostStack,
                 read_port: int = READ_PORT,
                 write_port: int = WRITE_PORT,
                 backend_bps: int = 8_000_000_000,
                 per_op_ns: int = 20 * US,
                 io_size: int = IO_SIZE,
                 stage: Optional[Stage] = None) -> None:
        self.sim = sim
        self.stack = stack
        self.backend_bps = backend_bps
        self.per_op_ns = per_op_ns
        self.io_size = io_size
        self.stage = stage
        self._io_queue: Deque[Tuple[TcpConnection, int, int, int]] = \
            deque()
        self._busy = False
        self.ops_completed = {OP_READ: 0, OP_WRITE: 0}
        self.queue_max = 0
        stack.listen(read_port,
                     lambda conn: self._serve(conn, OP_READ))
        stack.listen(write_port,
                     lambda conn: self._serve(conn, OP_WRITE))

    def _serve(self, conn: TcpConnection, op: int) -> None:
        state = {"consumed": 0}
        unit = REQUEST_BYTES if op == OP_READ else self.io_size

        def on_data(c: TcpConnection, delivered: int) -> None:
            while delivered - state["consumed"] >= unit:
                state["consumed"] += unit
                self._enqueue_io(c, op, self.io_size)

        conn.on_data = on_data

    def _enqueue_io(self, conn: TcpConnection, op: int,
                    size: int) -> None:
        self._io_queue.append((conn, op, size, self.sim.now))
        self.queue_max = max(self.queue_max, len(self._io_queue))
        if not self._busy:
            self._service_next()

    def _service_next(self) -> None:
        if not self._io_queue:
            self._busy = False
            return
        self._busy = True
        conn, op, size, _ = self._io_queue.popleft()
        service_ns = self.per_op_ns + size * 8 * SEC // self.backend_bps
        self.sim.schedule(service_ns, self._complete_io, conn, op, size)

    def _complete_io(self, conn: TcpConnection, op: int,
                     size: int) -> None:
        self.ops_completed[op] += 1
        if conn.state not in (TcpConnection.DONE,):
            socket = MessageSocket(conn, self.stage)
            if op == OP_READ:
                socket.send(size, attrs={"msg_type": "read_data",
                                         "op_read": 0,
                                         "tenant": conn.tenant})
            else:
                socket.send(REQUEST_BYTES,
                            attrs={"msg_type": "write_ack",
                                   "op_read": 0,
                                   "tenant": conn.tenant})
        self._service_next()


class StorageClient:
    """One tenant's IO generator.

    The tenant *generates* IOs open loop at ``gen_ops_per_sec`` (the
    paper's "custom application that generates 64K IOs") — this is the
    crux of the case study: generating a READ costs only a tiny request
    on the wire, so a READ tenant's ops reach the server's shared IO
    queue at the generation rate, while a WRITE tenant's ops arrive
    only as fast as the wire carries 64 KB each.  An optional
    ``max_outstanding`` turns the client into a closed loop instead.
    """

    def __init__(self, sim: Simulator, stack: HostStack,
                 server_ip: int, server_port: int, op: int,
                 tenant: int,
                 gen_ops_per_sec: float = 5000.0,
                 max_outstanding: Optional[int] = None,
                 stage: Optional[Stage] = None,
                 io_size: int = IO_SIZE) -> None:
        if op not in (OP_READ, OP_WRITE):
            raise ValueError("op must be OP_READ or OP_WRITE")
        self.sim = sim
        self.stack = stack
        self.op = op
        self.tenant = tenant
        self.gen_ops_per_sec = gen_ops_per_sec
        self.max_outstanding = max_outstanding
        self.stage = stage
        self.io_size = io_size
        self.meter = ThroughputMeter(
            f"tenant{tenant}-{'read' if op == OP_READ else 'write'}")
        self.ops_done = 0
        self.ops_issued = 0
        self._in_flight = 0
        self._acked_bytes = 0
        self._running = False
        self.conn = stack.connect(server_ip, server_port,
                                  tenant=tenant)
        self.socket = MessageSocket(self.conn, stage)
        self.conn.on_established = lambda c: self.start()
        self.conn.on_data = self._on_data

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        if self.max_outstanding is None or \
                self._in_flight < self.max_outstanding:
            self._issue()
        gap_ns = max(1, int(SEC / self.gen_ops_per_sec))
        self.sim.schedule(gap_ns, self._tick)

    def _issue(self) -> None:
        self._in_flight += 1
        self.ops_issued += 1
        if self.op == OP_READ:
            # A small request; Pulsar charges it by the op size (the
            # metadata carries op_read=1 and msg_size=io_size).
            self.socket.send(REQUEST_BYTES,
                             attrs={"msg_type": "read_req",
                                    "op_read": 1,
                                    "msg_size": self.io_size,
                                    "tenant": self.tenant})
        else:
            self.socket.send(self.io_size,
                             attrs={"msg_type": "write_data",
                                    "op_read": 0,
                                    "msg_size": self.io_size,
                                    "tenant": self.tenant})

    def _on_data(self, conn: TcpConnection, delivered: int) -> None:
        """Completions: one READ completes per ``io_size`` bytes of
        response data; one WRITE per ``REQUEST_BYTES`` ack."""
        unit = self.io_size if self.op == OP_READ else REQUEST_BYTES
        while delivered - self._acked_bytes >= unit:
            self._acked_bytes += unit
            self._in_flight -= 1
            self.ops_done += 1
            self.meter.add(self.io_size, self.sim.now)

    def throughput_mbytes_per_s(self, start_ns: int,
                                end_ns: int) -> float:
        return self.meter.mbytes_per_s(start_ns, end_ns)

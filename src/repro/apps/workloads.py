"""Workload generation: the search-style request-response traffic of
Section 5.1.

"The workload driving the experiments is based on a realistic
request-response workload, with responses reflecting the flow size
distribution found in search applications [2, 8] ... mostly comprising
small flows of a few packets with high rate of flows starting and
terminating."

* :class:`FlowSizeDistribution` — an inverse-CDF sampler; the default
  points follow the web-search distribution used by DCTCP/PIAS (most
  flows under 10 KB, a heavy tail into the megabytes).
* :class:`RequestResponseServer` / :class:`RequestResponseClient` — a
  worker that answers each small request with a response flow of the
  requested size, one TCP connection per request; the client records
  per-response flow completion times.
* :class:`BulkSender` — long-running background flows; they declare a
  low desired priority so PIAS-style functions respect it
  (Section 3.4.2: "background flows can specify a low priority
  class").
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.stage import Stage
from ..netsim.simulator import SEC, Simulator
from ..netsim.tracing import FlowTracker
from ..stack.netstack import HostStack
from ..transport.sockets import MessageSocket
from ..transport.tcp import TcpConnection

REQUEST_BYTES = 100

#: (size_bytes, cumulative probability) — web-search-like flow sizes.
SEARCH_CDF: Tuple[Tuple[int, float], ...] = (
    (1_000, 0.15), (2_000, 0.35), (4_000, 0.50), (8_000, 0.63),
    (16_000, 0.72), (32_000, 0.78), (64_000, 0.83), (128_000, 0.88),
    (256_000, 0.92), (512_000, 0.95), (1_000_000, 0.975),
    (2_000_000, 0.99), (5_000_000, 1.0),
)

#: (size_bytes, cumulative probability) — data-mining-like flow sizes
#: (the other canonical datacenter distribution, cf. PIAS/DCTCP): even
#: more mass below a few KB, with a far heavier elephant tail.
DATA_MINING_CDF: Tuple[Tuple[int, float], ...] = (
    (300, 0.30), (1_000, 0.50), (2_000, 0.63), (10_000, 0.78),
    (100_000, 0.85), (1_000_000, 0.92), (10_000_000, 0.97),
    (100_000_000, 1.0),
)

#: Flow-size classes reported by Figure 9.
SMALL_FLOW_MAX = 10_000          # < 10 KB
INTERMEDIATE_FLOW_MAX = 1_000_000  # 10 KB - 1 MB


def generic_app_stage(name: str = "app") -> Stage:
    """A stage for the request-response applications: classifies every
    message and can expose the metadata the case-study functions need."""
    stage = Stage(name,
                  classifier_fields=("msg_type",),
                  metadata_fields=("msg_id", "msg_type", "msg_size",
                                   "priority", "op_read", "tenant",
                                   "key_hash", "level", "paced_queue"))
    return stage


class FlowSizeDistribution:
    """Inverse-CDF sampling of flow sizes."""

    def __init__(self, cdf: Sequence[Tuple[int, float]] = SEARCH_CDF
                 ) -> None:
        if not cdf or abs(cdf[-1][1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        last = 0.0
        for size, prob in cdf:
            if prob < last or size <= 0:
                raise ValueError("CDF must be non-decreasing with "
                                 "positive sizes")
            last = prob
        self.cdf = tuple(cdf)

    def sample(self, rng) -> int:
        u = rng.random()
        prev_size, prev_prob = 0, 0.0
        for size, prob in self.cdf:
            if u <= prob:
                # Interpolate within the band for a smoother
                # distribution.
                span = prob - prev_prob
                frac = (u - prev_prob) / span if span > 0 else 1.0
                return max(1, int(prev_size + frac *
                                  (size - prev_size)))
            prev_size, prev_prob = size, prob
        return self.cdf[-1][0]

    def mean(self) -> float:
        """Approximate mean of the distribution (band midpoints)."""
        total, prev_size, prev_prob = 0.0, 0, 0.0
        for size, prob in self.cdf:
            total += (prob - prev_prob) * (prev_size + size) / 2.0
            prev_size, prev_prob = size, prob
        return total


class _ResponseRegistry:
    """Side channel telling the server what each request asks for.

    A real deployment encodes the response size in the request payload;
    the simulator does not model payload bytes, so clients register the
    parameters of each request keyed by their connection's five-tuple.
    """

    def __init__(self) -> None:
        self._pending: Dict[Tuple, Dict[str, int]] = {}

    def put(self, flow_key: Tuple, params: Dict[str, int]) -> None:
        self._pending[flow_key] = params

    def pop(self, flow_key: Tuple) -> Dict[str, int]:
        return self._pending.pop(flow_key, {"size": 1000})


class RequestResponseServer:
    """The worker: answers each request with a response message.

    ``attrs_fn(params)`` produces the stage attributes of the response
    message — this is where a policy plugs in (e.g. SFF passes
    ``msg_size`` so the enclave learns the flow size up front).
    """

    def __init__(self, sim: Simulator, stack: HostStack, port: int,
                 registry: _ResponseRegistry,
                 stage: Optional[Stage] = None,
                 attrs_fn: Optional[Callable[[Dict[str, int]],
                                             Dict[str, object]]] = None
                 ) -> None:
        self.sim = sim
        self.stack = stack
        self.registry = registry
        self.stage = stage
        self.attrs_fn = attrs_fn or (lambda params: {})
        self.requests_served = 0
        stack.listen(port, self._on_connection)

    def _on_connection(self, conn: TcpConnection) -> None:
        conn.on_data = self._on_data

    def _on_data(self, conn: TcpConnection, delivered: int) -> None:
        if delivered < REQUEST_BYTES or conn.stats.bytes_sent > 0:
            return
        # The client's five-tuple keys the registry.
        params = self.registry.pop(
            (conn.remote_ip, conn.remote_port, conn.local_ip,
             conn.local_port, 6))
        size = params["size"]
        attrs = dict(self.attrs_fn(params))
        attrs.setdefault("msg_type", "response")
        attrs.setdefault("msg_size", size)
        socket = MessageSocket(conn, self.stage)
        socket.send(size, attrs)
        conn.close()
        self.requests_served += 1


class RequestResponseClient:
    """Issues requests with Poisson arrivals, measures response FCT."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 server_ip: int, server_port: int,
                 registry: _ResponseRegistry, tracker: FlowTracker,
                 distribution: Optional[FlowSizeDistribution] = None,
                 arrivals_per_sec: float = 1000.0,
                 kind: str = "request") -> None:
        self.sim = sim
        self.stack = stack
        self.server_ip = server_ip
        self.server_port = server_port
        self.registry = registry
        self.tracker = tracker
        self.distribution = distribution or FlowSizeDistribution()
        self.arrivals_per_sec = arrivals_per_sec
        self.kind = kind
        self.running = False
        self.requests_sent = 0
        self.responses_done = 0

    def start(self) -> None:
        self.running = True
        self._schedule_next()

    def stop(self) -> None:
        self.running = False

    def _schedule_next(self) -> None:
        gap_s = self.sim.rng.expovariate(self.arrivals_per_sec)
        self.sim.schedule(max(1, int(gap_s * SEC)), self._fire)

    def _fire(self) -> None:
        if not self.running:
            return
        self._issue_request()
        self._schedule_next()

    def _issue_request(self) -> None:
        size = self.distribution.sample(self.sim.rng)
        conn = self.stack.connect(self.server_ip, self.server_port)
        self.registry.put(conn.five_tuple, {"size": size})
        started_at = self.sim.now
        self.requests_sent += 1

        def on_response(inner_conn: TcpConnection,
                        delivered: int) -> None:
            if delivered >= size:
                self.tracker.record(inner_conn.five_tuple, size,
                                    started_at, self.sim.now,
                                    kind=self.kind)
                self.responses_done += 1
                inner_conn.close()

        conn.on_data = on_response
        conn.message_send(REQUEST_BYTES)


class BulkSender:
    """A long-running background flow with a declared low priority."""

    def __init__(self, sim: Simulator, stack: HostStack,
                 server_ip: int, server_port: int,
                 stage: Optional[Stage] = None,
                 chunk_bytes: int = 1_000_000,
                 low_priority: int = 0,
                 tenant: int = 0) -> None:
        self.sim = sim
        self.stack = stack
        self.stage = stage
        self.chunk_bytes = chunk_bytes
        self.low_priority = low_priority
        self.tenant = tenant
        self.bytes_completed = 0
        self.conn = stack.connect(server_ip, server_port,
                                  tenant=tenant)
        self.socket = MessageSocket(self.conn, stage)
        self.conn.on_established = lambda c: self._send_chunk()
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def _send_chunk(self) -> None:
        if self._stopped:
            return
        attrs = {"msg_type": "bulk", "priority": self.low_priority}
        if self.tenant:
            attrs["tenant"] = self.tenant
        self.socket.send(self.chunk_bytes, attrs=attrs,
                         on_complete=self._on_chunk_done)

    def _on_chunk_done(self, record, now_ns: int) -> None:
        self.bytes_completed += self.chunk_bytes
        self._send_chunk()


class SinkServer:
    """Accepts connections and discards everything (bulk sink)."""

    def __init__(self, stack: HostStack, port: int) -> None:
        self.bytes_received = 0
        stack.listen(port, self._on_connection)

    def _on_connection(self, conn: TcpConnection) -> None:
        conn.on_data = self._on_data

    def _on_data(self, conn: TcpConnection, delivered: int) -> None:
        self.bytes_received = max(self.bytes_received, delivered)


def make_registry() -> _ResponseRegistry:
    return _ResponseRegistry()

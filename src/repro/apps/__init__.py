"""Eden-compliant applications (stages) and workload generators."""

from .http import HttpClient, HttpServer
from .memcached import MemcachedClient, MemcachedServer, key_hash
from .storage import (IO_SIZE, OP_READ, OP_WRITE, READ_PORT,
                      REQUEST_BYTES, StorageClient, StorageServer,
                      WRITE_PORT)
from .workloads import (BulkSender, DATA_MINING_CDF, FlowSizeDistribution,
                        INTERMEDIATE_FLOW_MAX, RequestResponseClient,
                        RequestResponseServer, SEARCH_CDF,
                        SMALL_FLOW_MAX, SinkServer, generic_app_stage,
                        make_registry)

__all__ = [
    "BulkSender", "DATA_MINING_CDF", "FlowSizeDistribution", "HttpClient", "HttpServer",
    "INTERMEDIATE_FLOW_MAX", "IO_SIZE", "MemcachedClient",
    "MemcachedServer", "OP_READ", "OP_WRITE", "READ_PORT",
    "REQUEST_BYTES", "RequestResponseClient", "RequestResponseServer",
    "SEARCH_CDF", "SMALL_FLOW_MAX", "SinkServer", "StorageClient",
    "StorageServer", "WRITE_PORT", "generic_app_stage", "key_hash",
    "make_registry",
]

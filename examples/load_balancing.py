"""Case study 2 (paper Section 5.2): WCMP on an asymmetric topology.

Builds the Figure 1 topology (a 10 Gbps and a 1 Gbps path between two
hosts), deploys per-packet weighted path selection in the sender's
NIC enclave, and compares ECMP (equal weights) with WCMP (weights
proportional to path capacity, 10:1).

Run:  python examples/load_balancing.py
"""

from repro.experiments import fig10


def main():
    print("asymmetric two-path topology: 10 Gbps + 1 Gbps "
          "(min-cut 11 Gbps)\n")
    rows = []
    for mode in ("ecmp", "wcmp"):
        result = fig10.run_wcmp(mode=mode, variant="eden", seed=1,
                                duration_ms=100, warmup_ms=20)
        rows.append(result)
        print(result.row())
    ecmp, wcmp = rows
    print(f"\nWCMP beats ECMP {wcmp.throughput_mbps / ecmp.throughput_mbps:.1f}x "
          f"(paper: 3x) and stays below the 11 Gbps min-cut because "
          f"per-packet spraying reorders TCP segments.")
    print(f"WCMP sent {wcmp.fast_path_share:.0%} of packets on the "
          f"fast path (target 10/11 = 91%).")


if __name__ == "__main__":
    main()

"""Application-aware load balancing: memcached behind a VIP.

Combines two Eden pieces from the paper:

* the **memcached stage** (Table 2) classifies GET/PUT messages with
  per-message keys and ids;
* an **Ananta-style NAT action function** in the client's enclave
  rewrites connections aimed at a virtual IP to one of three replica
  servers (and rewrites responses back), exercising the DSL's header
  modification — no application or server changes.

Run:  python examples/memcached_replicas.py
"""

from repro.apps import MemcachedClient, MemcachedServer
from repro.core import Controller, Enclave, memcached_stage
from repro.functions.replica import AnantaDeployment
from repro.netsim import GBPS, MS, Simulator, star
from repro.stack import HostStack

VIP = 777


def main():
    sim = Simulator(seed=2)
    net = star(sim, 4, host_rate_bps=10 * GBPS)  # h1 client, h2-4
    controller = Controller()
    enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
    controller.register_enclave("h1", enclave)

    # Client stack processes BOTH directions through the enclave so
    # replica responses are rewritten back to the VIP.
    client_stack = HostStack(sim, net.hosts["h1"], enclave=enclave,
                             process_rx=True)
    replicas = {}
    for name in ("h2", "h3", "h4"):
        stack = HostStack(sim, net.hosts[name])
        replicas[net.host_ip(name)] = MemcachedServer(sim, stack)

    AnantaDeployment(controller).install(
        "h1", vip=VIP, replicas=sorted(replicas))

    stage = memcached_stage()
    controller.register_stage("h1", stage)

    # One logical server object per replica ip is needed for the
    # side-channel op registry; route each op via a fresh client
    # bound to the VIP.  The NAT decides which replica actually
    # serves each connection.
    done = []

    def run_op(i):
        # We don't know which replica the NAT will pick, so register
        # the op with all of them, keyed by the five-tuple each
        # replica will actually observe (only the chosen one consumes
        # its entry).
        client = MemcachedClient(sim, client_stack,
                                 next(iter(replicas.values())), VIP,
                                 stage=stage)
        conn = client.put(f"key-{i}", 2000 + i,
                          on_ack=lambda k, ns: done.append(k))
        for ip, server in replicas.items():
            server.register_op(
                (conn.local_ip, conn.local_port, ip, 11211, 6),
                "PUT", f"key-{i}", 2000 + i)
        return conn

    for i in range(30):
        run_op(i)
        sim.run(until_ns=sim.now + 2 * MS)
    sim.run(until_ns=sim.now + 50 * MS)

    print(f"{len(done)}/30 PUTs acknowledged through the VIP\n")
    print("replica         puts stored")
    for ip, server in sorted(replicas.items()):
        print(f"  {ip:>10}    {server.puts:4d}")
    spread = [s.puts for s in replicas.values()]
    print("\nthe NAT spread", sum(spread),
          "connections across", sum(1 for c in spread if c),
          "replicas; applications and servers are unmodified.")


if __name__ == "__main__":
    main()

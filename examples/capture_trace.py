"""Capture simulated Eden traffic to a pcap file.

The packet-schema annotations of paper Figure 8 map Eden state to real
header fields (priority -> 802.1q PCP, path label -> VLAN id).  This
demo taps a switch port during a PIAS run, writes a standard pcap
file you can open in Wireshark, and verifies — by re-reading the
capture — that the priorities the enclave assigned are sitting in the
VLAN tags on the wire.

Run:  python examples/capture_trace.py [out.pcap]
"""

import collections
import sys

from repro.core import Controller, Enclave
from repro.core.stage import Classifier
from repro.functions.pias import FlowSchedulingDeployment
from repro.netsim import GBPS, MS, Simulator, star
from repro.netsim.pcap import PortTap, read_pcap
from repro.stack import HostStack
from repro.transport.sockets import MessageSocket
from repro.apps.workloads import generic_app_stage


def main():
    out = sys.argv[1] if len(sys.argv) > 1 else "eden_trace.pcap"
    sim = Simulator(seed=7)
    net = star(sim, 2, host_rate_bps=10 * GBPS)
    controller = Controller()
    enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
    controller.register_enclave("h1", enclave)
    s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                   process_pure_acks=False)
    s2 = HostStack(sim, net.hosts["h2"])
    FlowSchedulingDeployment(controller, "pias").install(
        ["h1"], [(10_000, 7), (100_000, 6), (1 << 50, 5)])

    stage = generic_app_stage()
    stage.create_stage_rule("r1", Classifier.of(), "m",
                            ["msg_id", "msg_size", "priority"])
    s2.listen(5000, lambda conn: None)
    conn = s1.connect(net.host_ip("h2"), 5000)
    socket = MessageSocket(conn, stage)
    socket.send(500_000, attrs={"msg_type": "bulk", "priority": 7})

    tap = PortTap(sim, net.switches["tor"].port_to("h2"), out)
    sim.run(until_ns=20 * MS)
    tap.close()

    records = read_pcap(out)
    print(f"wrote {out}: {len(records)} frames, "
          f"{sum(p.payload_len for _, p in records)} payload bytes\n")
    by_pcp = collections.Counter(
        p.priority for _, p in records if p.payload_len > 0)
    print("802.1q PCP   data packets   (PIAS demotion visible on "
          "the wire)")
    for pcp in sorted(by_pcp, reverse=True):
        print(f"    {pcp}        {by_pcp[pcp]:6d}")
    print("\nopen it in Wireshark: the VLAN priority code points are "
          "the enclave's decisions.")


if __name__ == "__main__":
    main()

"""Stateful firewalling at the end host: port knocking (paper Table 1).

The receive path of h2's enclave runs the OpenState-style port-knock
program: a client must touch three secret ports in the right order
before the protected service port opens for its source address.  The
demo drives *real* TCP connections through the simulator:

* a connection attempt to port 22 before knocking goes unanswered
  (the enclave eats the SYNs);
* after knocking 7001 -> 7002 -> 7003, the same client connects and
  transfers data;
* a second client that never knocked still cannot connect.

Run:  python examples/port_knocking.py
"""

from repro.core import Controller, Enclave
from repro.functions.firewall import PortKnockDeployment
from repro.netsim import GBPS, MS, Simulator, star
from repro.stack import HostStack

SSH_PORT = 22
KNOCKS = (7001, 7002, 7003)


def try_connect(sim, stack, server_ip, port, wait_ms=8):
    """Attempt a TCP connect; returns True if it established."""
    conn = stack.connect(server_ip, port)
    established = []
    conn.on_established = lambda c: established.append(True)
    sim.run(until_ns=sim.now + wait_ms * MS)
    # Tear the attempt down so retransmitting SYNs stop.
    conn._cancel_rto()
    stack.connection_done(conn)
    return bool(established)


def main():
    sim = Simulator(seed=1)
    net = star(sim, 3, host_rate_bps=10 * GBPS)
    controller = Controller()
    enclave = Enclave("h2.enclave", rng=sim.rng, clock=sim.clock)
    controller.register_enclave("h2", enclave)

    client = HostStack(sim, net.hosts["h1"])
    intruder = HostStack(sim, net.hosts["h3"])
    # The server processes its RECEIVE path through the enclave.
    server = HostStack(sim, net.hosts["h2"], enclave=enclave,
                       process_rx=True)
    server.listen(SSH_PORT, lambda conn: None)

    PortKnockDeployment(controller).install("h2", list(KNOCKS),
                                            open_port=SSH_PORT)
    server_ip = net.host_ip("h2")

    print("1. client connects to :22 without knocking ->",
          "ESTABLISHED" if try_connect(sim, client, server_ip,
                                       SSH_PORT)
          else "blocked (SYNs dropped by the enclave)")

    print("2. client knocks", " -> ".join(map(str, KNOCKS)))
    for port in KNOCKS:
        try_connect(sim, client, server_ip, port, wait_ms=3)

    print("3. client connects to :22 again ->",
          "ESTABLISHED" if try_connect(sim, client, server_ip,
                                       SSH_PORT)
          else "blocked")

    print("4. intruder (never knocked) connects to :22 ->",
          "ESTABLISHED" if try_connect(sim, intruder, server_ip,
                                       SSH_PORT)
          else "blocked")

    fn = enclave.function("port_knock")
    print(f"\nport_knock ran {fn.stats.invocations} times; "
          f"concurrency model: {fn.concurrency.value} "
          f"(writes global state)")


if __name__ == "__main__":
    main()

"""Quickstart: write an action function, install it, process packets.

This walks the core Eden loop of the paper in ~60 lines:

1. declare the state your function needs (message + global schemas
   with lifetime/access annotations — paper Figure 8);
2. write the data-plane function in the DSL (paper Figure 7);
3. let the enclave compile it to bytecode, verify it, and install a
   match-action rule;
4. push global state from the controller side;
5. process packets and watch the function act on them.

Run:  python examples/quickstart.py
"""

from repro.core import Enclave
from repro.core.stage import Classification
from repro.lang import AccessLevel, Field, FieldKind, Lifetime, schema

# 1. State declarations ----------------------------------------------------

MESSAGE_SCHEMA = schema("DemoMessage", Lifetime.MESSAGE, [
    Field("size", AccessLevel.READ_WRITE),          # bytes seen so far
    Field("priority", AccessLevel.READ_ONLY, default=7),
])

GLOBAL_SCHEMA = schema("DemoGlobal", Lifetime.GLOBAL, [
    Field("priorities", AccessLevel.READ_ONLY, FieldKind.RECORD_ARRAY,
          record_fields=("message_size_limit", "priority")),
])


# 2. The action function (paper Figure 7, PIAS-style demotion) -------------

def priority_selection(packet, msg, _global):
    """Demote a message's packets as its cumulative size grows."""
    msg_size = msg.size + packet.size
    msg.size = msg_size

    def search(index):
        if index >= len(_global.priorities):
            return 0
        elif msg_size <= _global.priorities[index].message_size_limit:
            return _global.priorities[index].priority
        else:
            return search(index + 1)

    desired = msg.priority
    if desired < 1:
        packet.priority = desired   # background flows keep low class
    else:
        packet.priority = search(0)


# A minimal packet: any object exposing the packet-schema attributes.
class Packet:
    def __init__(self, size):
        self.src_ip, self.dst_ip = 1, 2
        self.src_port, self.dst_port, self.proto = 1000, 80, 6
        self.size = size
        self.priority = self.path_id = self.drop = 0
        self.to_controller = self.queue_id = self.charge = 0
        self.ecn = self.tenant = 0


def main():
    # 3. Compile + verify + install.
    enclave = Enclave("quickstart.enclave")
    fn = enclave.install_function(priority_selection,
                                  message_schema=MESSAGE_SCHEMA,
                                  global_schema=GLOBAL_SCHEMA)
    enclave.install_rule("*", "priority_selection")
    print("compiled to", sum(len(f.code) for f in fn.program.functions),
          "bytecode instructions;")
    print("concurrency model:", fn.concurrency.value,
          "(derived from the write annotations)\n")
    print(fn.program.disassemble()[:600], "...\n")

    # 4. Controller pushes thresholds: <=10 KB -> 7, <=1 MB -> 6,
    #    else 5.
    enclave.set_global_records("priority_selection", "priorities",
                               [(10_000, 7), (1_000_000, 6),
                                (1 << 50, 5)])

    # 5. Process a message's packets; watch the demotion.
    cls = [Classification("app.r1.msg", {"msg_id": ("app", 1)})]
    print("packet#  msg bytes   priority")
    for i in range(1, 901):
        packet = Packet(size=1514)
        enclave.process_packet(packet, cls, now_ns=i)
        if i in (1, 7, 8, 660, 661, 900):
            print(f"{i:7d} {i * 1514:10d} {packet.priority:10d}")

    stats = fn.stats
    print(f"\n{stats.invocations} invocations, "
          f"{stats.ops_executed / stats.invocations:.1f} ops/packet, "
          f"stack {stats.max_stack_bytes} B, "
          f"heap {stats.max_heap_bytes} B "
          f"(paper Section 5.4: ~64 B / ~256 B)")


if __name__ == "__main__":
    main()

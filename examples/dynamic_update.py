"""Dynamic data-plane updates and function composition (paper §3.4.3,
§6).

Two Eden properties that the interpreter design buys:

1. **Hot updates** — the controller recompiles an action function and
   swaps it into the enclave *while traffic flows*, without touching
   the match-action rules or losing per-message state ("functions can
   be updated dynamically by the controller without affecting
   forwarding performance").
2. **Composition** — two functions (a scheduler assigning 802.1q
   priorities and a path selector assigning labels) chained through
   match-action tables so every packet traverses both, in order.

Run:  python examples/dynamic_update.py
"""

from repro.core import ChainLink, Controller, Enclave, FunctionChain
from repro.core.stage import Classifier
from repro.functions.pias import (PIAS_GLOBAL_SCHEMA,
                                  PIAS_MESSAGE_SCHEMA, pias_action)
from repro.functions.wcmp import WCMP_GLOBAL_SCHEMA, wcmp_action
from repro.netsim import MS, Simulator, asymmetric_two_path
from repro.netsim.routing import provision_labeled_paths
from repro.stack import HostStack
from repro.transport.sockets import MessageSocket
from repro.apps.workloads import generic_app_stage


def strict_two_band(packet, msg, _global):
    """The v2 policy we hot-swap in: two bands only, hard cut."""
    msg.size = msg.size + packet.size
    if msg.size <= 20_000:
        packet.priority = 7
    else:
        packet.priority = 1


def main():
    sim = Simulator(seed=3)
    net = asymmetric_two_path(sim)
    controller = Controller()
    enclave = Enclave("h1.enclave", rng=sim.rng, clock=sim.clock)
    controller.register_enclave("h1", enclave)
    s1 = HostStack(sim, net.hosts["h1"], enclave=enclave,
                   process_pure_acks=False)
    s2 = HostStack(sim, net.hosts["h2"])

    # -- composition: scheduler -> path selector -----------------------
    chain = FunctionChain(controller, [
        ChainLink(pias_action, name="pias",
                  message_schema=PIAS_MESSAGE_SCHEMA,
                  global_schema=PIAS_GLOBAL_SCHEMA),
        ChainLink(wcmp_action, name="wcmp",
                  global_schema=WCMP_GLOBAL_SCHEMA),
    ])
    tables = chain.deploy("h1")
    print(f"composed pias -> wcmp through tables {tables}")

    enclave.set_global_records("pias", "priorities",
                               [(10_000, 7), (1_000_000, 6),
                                (1 << 50, 5)])
    provision_labeled_paths(net, "h1", "h2")
    enclave.set_global_keyed(
        "wcmp", "paths",
        (net.host_ip("h1"), net.host_ip("h2")),
        [1, 909, 2, 91])

    # -- traffic ---------------------------------------------------------
    stage = generic_app_stage()
    stage.create_stage_rule("r1", Classifier.of(), "msg",
                            ["msg_id", "msg_size", "priority"])
    seen = []

    def on_conn(conn):
        conn.on_data = lambda c, total: seen.append(total)

    s2.listen(6000, on_conn)
    conn = s1.connect(net.host_ip("h2"), 6000)
    socket = MessageSocket(conn, stage)
    for _ in range(40):
        socket.send(3000, attrs={"msg_type": "rpc", "priority": 7})
    sim.run(until_ns=10 * MS)
    v1_stats = enclave.stats_summary()
    print(f"v1 policy: pias ran {v1_stats['pias']['invocations']}x, "
          f"wcmp ran {v1_stats['wcmp']['invocations']}x on the same "
          f"packets")

    # -- hot update ------------------------------------------------------
    print("\nhot-swapping the scheduler (rules and message state "
          "survive)...")
    controller.replace_function("h1", "pias", strict_two_band)
    for _ in range(40):
        socket.send(3000, attrs={"msg_type": "rpc", "priority": 7})
    sim.run(until_ns=25 * MS)
    v2_stats = enclave.stats_summary()
    print(f"v2 policy: pias(+v2) total invocations "
          f"{v2_stats['pias']['invocations']}, messages tracked "
          f"{v2_stats['pias']['messages_tracked']}")
    print(f"receiver saw {seen[-1] if seen else 0} bytes — traffic "
          f"never stopped across the update.")


if __name__ == "__main__":
    main()

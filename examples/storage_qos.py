"""Case study 3 (paper Section 5.3): datacenter QoS with Pulsar.

Two tenants hammer a storage server behind a 1 Gbps link with 64 KB
IOs — one READs, one WRITEs.  READ requests are tiny on the forward
path, so the READ tenant floods the server's shared IO queue and
starves the WRITEs.  Pulsar's enclave function charges each READ
*request* by the operation size at the client's rate limiter, which
restores isolation.

Run:  python examples/storage_qos.py
"""

from repro.experiments import fig11


def main():
    print("two tenants, 64 KB IOs, storage server on a 1 Gbps "
          "link\n")
    results = fig11.run_all(seed=1, duration_ms=200)
    for result in results:
        print(result.row())
    iso, sim, ctl = results
    drop = 100 * (1 - sim.write_mbytes_per_s /
                  iso.write_mbytes_per_s)
    print(f"\ncompeting with READs costs WRITEs {drop:.0f}% of their "
          f"throughput (paper: 72%);")
    print("with Pulsar's operation-size charging the two tenants "
          "equalize.")


if __name__ == "__main__":
    main()

"""Case study 1 (paper Section 5.1): flow scheduling with PIAS/SFF.

Runs the search-style request-response workload at ~70% load with
background bulk traffic, under three policies — no prioritization,
PIAS (priorities learned by demotion), and SFF (priorities from
app-declared flow sizes) — each both natively compiled and
interpreted, and prints the Figure 9 rows.

Run:  python examples/flow_scheduling.py [--quick]
"""

import sys

from repro.experiments import fig9


def main():
    quick = "--quick" in sys.argv
    duration = 60 if quick else 150
    print(f"running 6 configurations x {duration} ms simulated "
          f"(this takes a few minutes)...\n")
    results = []
    for policy in ("baseline", "pias", "sff"):
        for variant in ("native", "eden"):
            result = fig9.run_flow_scheduling(
                policy=policy, variant=variant, seed=1,
                duration_ms=duration)
            results.append(result)
            print(result.row())
    base = results[0]
    pias = results[2]
    print(f"\nPIAS cuts small-flow average FCT by "
          f"{100 * (1 - pias.small_avg_us / base.small_avg_us):.0f}% "
          f"vs baseline (paper: 25-40%).")
    print("Native vs EDEN columns should be statistically "
          "indistinguishable — the whole point of Figure 9.")


if __name__ == "__main__":
    main()

"""Section 5.4 micro — interpreter footprint and per-packet cost.

Regenerates the paper's statement that the case-study programs use
operand stack and heap "in the order of 64 and 256 bytes", and
measures interpreted vs natively compiled per-packet cost (the
trade-off of Section 3.4.3).
"""

from repro.experiments import micro

from conftest import record_result


def test_interpreter_micro(benchmark):
    results = benchmark.pedantic(micro.run_micro,
                                 kwargs=dict(packets=300, repeat=3),
                                 rounds=1, iterations=1)
    record_result("Section 5.4 — interpreter microbenchmarks",
                  micro.format_results(results))
    for res in results:
        benchmark.extra_info[f"{res.name}_stack_B"] = res.stack_bytes
        benchmark.extra_info[f"{res.name}_heap_B"] = res.heap_bytes
        # Paper ballpark: tens of bytes of stack, <= few hundred of
        # heap.
        assert res.stack_bytes <= 128
        assert res.heap_bytes <= 1024
        assert res.interp_ns_per_packet > res.native_ns_per_packet

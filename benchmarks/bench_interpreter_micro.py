"""Section 5.4 micro — interpreter footprint and per-packet cost.

Regenerates the paper's statement that the case-study programs use
operand stack and heap "in the order of 64 and 256 bytes", and
measures interpreted vs natively compiled per-packet cost (the
trade-off of Section 3.4.3).
"""

from repro.experiments import micro

from conftest import record_result


def test_interpreter_micro(benchmark):
    results = benchmark.pedantic(micro.run_micro,
                                 kwargs=dict(packets=300, repeat=3),
                                 rounds=1, iterations=1)
    record_result("Section 5.4 — interpreter microbenchmarks",
                  micro.format_results(results))
    for res in results:
        benchmark.extra_info[f"{res.name}_stack_B"] = res.stack_bytes
        benchmark.extra_info[f"{res.name}_heap_B"] = res.heap_bytes
        # Paper ballpark: tens of bytes of stack, <= few hundred of
        # heap.
        assert res.stack_bytes <= 128
        assert res.heap_bytes <= 1024
        assert res.interp_ns_per_packet > res.native_ns_per_packet


def test_dispatch_micro(benchmark):
    """ns/op before (tree walk) and after (fast dispatch).

    The closure-threaded dispatcher must win by at least 2x on the
    PIAS demotion search — the hottest interpreted loop in the
    case studies.  ops/invocation is identical across dispatch modes
    (superinstructions count constituents), so ns/op compares fairly.
    """
    results = benchmark.pedantic(
        micro.run_dispatch_micro,
        kwargs=dict(invocations=1500, repeat=3), rounds=1,
        iterations=1)
    record_result("Interpreter dispatch — before/after ns/op",
                  micro.format_dispatch_results(results))
    for res in results:
        benchmark.extra_info[f"{res.name}_tree_ns_op"] = \
            round(res.tree_ns_per_op, 1)
        benchmark.extra_info[f"{res.name}_fast_ns_op"] = \
            round(res.fast_ns_per_op, 1)
        benchmark.extra_info[f"{res.name}_speedup"] = \
            round(res.speedup, 2)
        assert res.speedup >= 2.0, (
            f"{res.name}: fast dispatch only {res.speedup:.2f}x over "
            f"the tree walk (need >= 2x)")

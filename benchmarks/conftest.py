"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's
evaluation and records its rows through :func:`record_result`; a
terminal-summary hook prints every recorded artifact after the
pytest-benchmark table, so ``pytest benchmarks/ --benchmark-only``
shows the reproduced numbers without extra flags.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_RESULTS = []


def record_result(title, text):
    """Store one experiment's formatted output for the summary."""
    _RESULTS.append((title, text))


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.section("paper reproduction results")
    for title, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in text.splitlines():
            terminalreporter.write_line(line)

"""Figure 9 — flow completion times under flow scheduling.

Regenerates the paper's bars: average and 95th-percentile FCT of
small (<10 KB) and intermediate (10 KB-1 MB) flows for {baseline,
PIAS, SFF} x {native, EDEN}.  Expected shape (Section 5.1): enabling
prioritization cuts small-flow FCT substantially (the paper reports
25-40%); SFF is at least as good as PIAS; native vs EDEN differences
are not meaningful.
"""

import pytest

from repro.experiments import fig9

from conftest import record_result

DURATION_MS = 120
CONFIGS = [(policy, variant)
           for policy in ("baseline", "pias", "sff")
           for variant in ("native", "eden")]

_rows = {}


@pytest.mark.parametrize("policy,variant", CONFIGS)
def test_fig9(benchmark, policy, variant):
    result = benchmark.pedantic(
        fig9.run_flow_scheduling,
        kwargs=dict(policy=policy, variant=variant, seed=1,
                    duration_ms=DURATION_MS),
        rounds=1, iterations=1)
    benchmark.extra_info["small_avg_us"] = result.small_avg_us
    benchmark.extra_info["small_p95_us"] = result.small_p95_us
    benchmark.extra_info["mid_avg_us"] = result.mid_avg_us
    benchmark.extra_info["mid_p95_us"] = result.mid_p95_us
    _rows[(policy, variant)] = result
    assert result.n_small > 100

    if len(_rows) == len(CONFIGS):
        ordered = [_rows[c] for c in CONFIGS]
        record_result("Figure 9 — flow completion times",
                      fig9.format_results(ordered))
        # Shape assertions (paper Section 5.1).
        base = _rows[("baseline", "native")]
        for policy in ("pias", "sff"):
            for variant in ("native", "eden"):
                assert _rows[(policy, variant)].small_avg_us < \
                    base.small_avg_us

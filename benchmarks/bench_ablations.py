"""Ablations of Eden's design choices (DESIGN.md Section 5).

* **Interpreted vs native** per-packet cost — the paper's central
  overhead trade-off (Section 3.4.3), measured per case-study program
  in ``bench_interpreter_micro`` and here end-to-end through the
  enclave.
* **Per-packet vs per-message WCMP** — Section 2.1.1's trade-off:
  message-level stickiness trades load balance for less reordering.
* **Tail-call optimization on/off** — the compiler optimization the
  paper calls out (Section 3.4.4).
* **OS vs NIC enclave placement** — Section 6's open question; here
  just the base per-packet cost difference of the two placements.
"""

import pytest

from repro.core import Enclave, PLACEMENT_NIC, PLACEMENT_OS
from repro.experiments import fig10
from repro.functions.library import table1
from repro.lang import Interpreter, compile_action, verify
from repro.functions.pias import (PIAS_GLOBAL_SCHEMA,
                                  PIAS_MESSAGE_SCHEMA, pias_action)
from repro.lang.annotations import DEFAULT_PACKET_SCHEMA

from conftest import record_result

_wcmp_rows = {}


@pytest.mark.parametrize("granularity", ("packet", "message"))
def test_ablation_wcmp_granularity(benchmark, granularity):
    result = benchmark.pedantic(
        fig10.run_wcmp,
        kwargs=dict(mode="wcmp", variant="eden",
                    granularity=granularity, seed=1,
                    duration_ms=80, warmup_ms=20),
        rounds=1, iterations=1)
    benchmark.extra_info["throughput_mbps"] = result.throughput_mbps
    benchmark.extra_info["retransmits"] = result.retransmits
    _wcmp_rows[granularity] = result
    if len(_wcmp_rows) == 2:
        pkt, msg = _wcmp_rows["packet"], _wcmp_rows["message"]
        lines = [
            "granularity  throughput  retransmits  fast-share",
            f"per-packet   {pkt.throughput_mbps:7.0f}Mbps "
            f"{pkt.retransmits:8d}    {pkt.fast_path_share:.1%}",
            f"per-message  {msg.throughput_mbps:7.0f}Mbps "
            f"{msg.retransmits:8d}    {msg.fast_path_share:.1%}",
            "",
            "Per-message WCMP avoids reordering (fewer retransmits)"
            " at the price of coarser balancing.",
        ]
        record_result("Ablation — WCMP granularity", "\n".join(lines))
        # The reordering mechanism: per-packet spraying retransmits
        # far more than per-message stickiness.
        assert pkt.retransmits > msg.retransmits


def test_ablation_tail_call_optimization(benchmark):
    def compile_both():
        out = {}
        for tco in (True, False):
            ast_, prog = compile_action(
                pias_action, packet_schema=DEFAULT_PACKET_SCHEMA,
                message_schema=PIAS_MESSAGE_SCHEMA,
                global_schema=PIAS_GLOBAL_SCHEMA,
                optimize_tail_calls=tco)
            depth = verify(prog)
            # Execute over a long threshold table to expose call
            # depth: 30 bands force 30 recursion levels without TCO.
            table = []
            for band in range(30):
                table += [(band + 1) * 1_000_000, 7 - (band % 8)]
            interp = Interpreter()
            fields = [0] * len(prog.field_table)
            size_idx = [i for i, r in enumerate(prog.field_table)
                        if r.name == "size" and
                        r.scope == "message"][0]
            fields[size_idx] = 25_000_000
            prio_idx = [i for i, r in enumerate(prog.field_table)
                        if r.name == "priority" and
                        r.scope == "message"][0]
            fields[prio_idx] = 7
            result = interp.execute(prog, fields, [table])
            out[tco] = (result.stats.max_call_depth,
                        result.stats.stack_bytes,
                        result.stats.ops_executed)
        return out

    out = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    with_tco, without_tco = out[True], out[False]
    lines = [
        "                 call depth   stack bytes   ops",
        f"TCO on           {with_tco[0]:10d} {with_tco[1]:12d} "
        f"{with_tco[2]:5d}",
        f"TCO off          {without_tco[0]:10d} {without_tco[1]:12d} "
        f"{without_tco[2]:5d}",
    ]
    record_result("Ablation — tail-call optimization (PIAS search)",
                  "\n".join(lines))
    # TCO flattens the recursion to a loop: one frame instead of one
    # per threshold band.  (The *operand* stack is tiny either way;
    # the saving is in frames.)
    assert with_tco[0] < without_tco[0]
    assert with_tco[1] <= without_tco[1]


def test_ablation_enclave_placement(benchmark):
    def measure():
        nic = Enclave("nic", placement=PLACEMENT_NIC)
        os_ = Enclave("os", placement=PLACEMENT_OS)
        return (nic.per_packet_base_cost_ns,
                os_.per_packet_base_cost_ns)

    nic_ns, os_ns = benchmark.pedantic(measure, rounds=1,
                                       iterations=1)
    record_result(
        "Ablation — enclave placement",
        f"NIC enclave base cost: {nic_ns} ns/packet\n"
        f"OS  enclave base cost: {os_ns} ns/packet\n"
        "(Section 6: where functions should run is an open question; "
        "the same bytecode executes in either placement.)")
    assert nic_ns < os_ns


def test_ablation_flow_size_distribution(benchmark):
    """PIAS under the two canonical datacenter flow-size mixes: the
    threshold mechanism helps small flows under either distribution
    (Section 2.1.3: thresholds are recomputed from the observed
    distribution)."""
    from repro.apps.workloads import DATA_MINING_CDF
    from repro.experiments import fig9

    def run_both():
        out = {}
        import repro.apps.workloads as workloads
        from repro.apps import FlowSizeDistribution
        for label, cdf in (("search", None),
                           ("data-mining", DATA_MINING_CDF)):
            # The fig9 runner builds its own distribution; patch the
            # default CDF for the data-mining variant.
            original = workloads.SEARCH_CDF
            if cdf is not None:
                workloads.SEARCH_CDF = cdf
                FlowSizeDistribution.__init__.__defaults__ = (cdf,)
            try:
                base = fig9.run_flow_scheduling(
                    "baseline", "native", seed=2, duration_ms=60,
                    warmup_ms=10)
                pias = fig9.run_flow_scheduling(
                    "pias", "native", seed=2, duration_ms=60,
                    warmup_ms=10)
            finally:
                workloads.SEARCH_CDF = original
                FlowSizeDistribution.__init__.__defaults__ = (
                    original,)
            out[label] = (base.small_avg_us, pias.small_avg_us)
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["distribution   baseline   PIAS   (small-flow avg FCT)"]
    for label, (base, pias) in out.items():
        lines.append(f"{label:<13} {base:8.1f} {pias:7.1f} us")
    record_result("Ablation — flow-size distribution", "\n".join(lines))
    for label, (base, pias) in out.items():
        assert pias < base, label


def test_ablation_dctcp(benchmark):
    """Substrate ablation: ECN-proportional backoff (DCTCP) vs plain
    loss-based TCP at an ECN-marking bottleneck — queue occupancy
    drops sharply at comparable goodput."""
    import sys
    sys.path.insert(0, "tests/transport")
    from test_dctcp import build_ecn_rig, run_flow
    from repro.netsim import MS

    def run_both():
        out = {}
        for dctcp in (False, True):
            sim, net, s1, s2 = build_ecn_rig(seed=21)
            port = net.switches["sw"].port_to("h2")
            samples = []

            def probe():
                samples.append(port.queued_bytes)
                if sim.now < 60 * MS:
                    sim.schedule(500_000, probe)

            sim.schedule(5_000_000, probe)
            conn, delivered = run_flow(sim, net, s1, s2,
                                       dctcp=dctcp)
            out[dctcp] = (sum(samples) / max(1, len(samples)),
                          delivered * 8 / 60e-3 / 1e6,
                          port.stats.drops)
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["            avg queue   goodput    drops"]
    for label, dctcp in (("reno-like", False), ("dctcp", True)):
        q, mbps, drops = out[dctcp]
        lines.append(f"{label:<11} {q:8.0f} B {mbps:7.0f} Mbps "
                     f"{drops:5d}")
    record_result("Ablation — DCTCP vs loss-based TCP",
                  "\n".join(lines))
    assert out[True][0] < out[False][0]


def test_fig10_confidence_intervals(benchmark):
    """Figure 10 with the paper's error-bar convention: mean ± 95% CI
    over multiple seeds ("Confidence intervals are within 2% of the
    values shown")."""
    from repro.experiments import fig10
    from repro.experiments.sweep import format_sweep, sweep

    def run():
        out = {}
        for mode in ("ecmp", "wcmp"):
            out[mode] = sweep(fig10.run_wcmp, seeds=[1, 2, 3],
                              mode=mode, variant="eden",
                              duration_ms=60, warmup_ms=15)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for mode, stats in out.items():
        tput = stats["throughput_mbps"]
        rel = tput.ci95 / tput.mean if tput.mean else 0
        lines.append(f"{mode}: {tput.mean:7.0f} ± {tput.ci95:5.0f} "
                     f"Mbps  ({rel:.1%} of mean, 3 seeds)")
    record_result("Figure 10 — seed-sweep confidence intervals",
                  "\n".join(lines))
    assert out["wcmp"]["throughput_mbps"].mean > \
        2.5 * out["ecmp"]["throughput_mbps"].mean

"""Figure 11 — storage READ vs WRITE throughput under Pulsar.

Regenerates the paper's three bar groups: isolated, simultaneous, and
rate-controlled 64 KB IO throughput against a storage server behind a
1 Gbps link.  Expected shape (Section 5.3): isolation gives both
tenants the link; competition collapses WRITEs (the paper reports a
72% drop); Pulsar's operation-size charging equalizes the tenants.
"""

import pytest

from repro.experiments import fig11

from conftest import record_result

DURATION_MS = 200
SCENARIOS = ("isolated", "simultaneous", "rate_controlled")

_rows = {}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fig11(benchmark, scenario):
    result = benchmark.pedantic(
        fig11.run_storage,
        kwargs=dict(scenario=scenario, seed=1,
                    duration_ms=DURATION_MS),
        rounds=1, iterations=1)
    benchmark.extra_info["read_mbytes_per_s"] = \
        result.read_mbytes_per_s
    benchmark.extra_info["write_mbytes_per_s"] = \
        result.write_mbytes_per_s
    _rows[scenario] = result

    if len(_rows) == len(SCENARIOS):
        ordered = [_rows[s] for s in SCENARIOS]
        record_result("Figure 11 — Pulsar storage QoS",
                      fig11.format_results(ordered))
        iso, sim, ctl = ordered
        assert sim.write_mbytes_per_s < 0.5 * iso.write_mbytes_per_s
        ratio = ctl.read_mbytes_per_s / max(1e-9,
                                            ctl.write_mbytes_per_s)
        assert 0.5 < ratio < 2.0

"""Table 1 — network-function coverage.

Regenerates the paper's expressiveness matrix and *executes* every
function marked "Eden out of the box": each is compiled from the DSL,
verified, installed in an enclave, run over canned packets, and its
observable effect checked — on both the interpreter and the native
backend.
"""

from repro.functions.library import format_table, run_demos, table1

from conftest import record_result


def test_table1_demos_interpreted(benchmark):
    results = benchmark.pedantic(run_demos,
                                 kwargs=dict(backend="interpreter"),
                                 rounds=1, iterations=1)
    assert results and all(results.values()), results
    supported = sum(1 for e in table1() if e.eden_out_of_box)
    total = len(table1())
    record_result(
        "Table 1 — function coverage",
        format_table() +
        f"\n\n{supported}/{total} rows supported out of the box; "
        f"all {len(results)} demos passed (interpreter).")


def test_table1_demos_native(benchmark):
    results = benchmark.pedantic(run_demos,
                                 kwargs=dict(backend="native"),
                                 rounds=1, iterations=1)
    assert results and all(results.values()), results

"""Figure 10 — ECMP vs WCMP aggregate throughput.

Regenerates the paper's bars on the asymmetric 10G+1G topology
(Figure 1) with per-packet path selection in the NIC enclave.
Expected shape (Section 5.2): ECMP peaks around 2 Gbps (dominated by
the slow path), WCMP 10:1 reaches several times that but stays below
the 11 Gbps min-cut because of packet reordering; native vs EDEN is
indistinguishable.
"""

import pytest

from repro.experiments import fig10

from conftest import record_result

DURATION_MS = 100
CONFIGS = [(mode, variant)
           for mode in ("ecmp", "wcmp")
           for variant in ("native", "eden")]

_rows = {}


@pytest.mark.parametrize("mode,variant", CONFIGS)
def test_fig10(benchmark, mode, variant):
    result = benchmark.pedantic(
        fig10.run_wcmp,
        kwargs=dict(mode=mode, variant=variant, seed=1,
                    duration_ms=DURATION_MS, warmup_ms=20),
        rounds=1, iterations=1)
    benchmark.extra_info["throughput_mbps"] = result.throughput_mbps
    benchmark.extra_info["fast_path_share"] = result.fast_path_share
    _rows[(mode, variant)] = result

    if len(_rows) == len(CONFIGS):
        ordered = [_rows[c] for c in CONFIGS]
        record_result("Figure 10 — ECMP vs WCMP throughput",
                      fig10.format_results(ordered))
        for variant in ("native", "eden"):
            ecmp = _rows[("ecmp", variant)]
            wcmp = _rows[("wcmp", variant)]
            # WCMP wins by a multiple (paper: 3x) but stays below the
            # 11 Gbps min-cut.
            assert wcmp.throughput_mbps > \
                2.5 * ecmp.throughput_mbps
            assert wcmp.throughput_mbps < 11_000

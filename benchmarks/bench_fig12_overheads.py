"""Figure 12 — CPU overheads of the Eden components.

Regenerates the paper's decomposition: per-packet cost of the API
(metadata pass), enclave (classification + state management), and
interpreter, as a percentage of the vanilla TCP stack's send path,
under the SFF policy with 12 long-running flows.

Absolute percentages here are much larger than the paper's (a Python
interpreter interpreting bytecode); the reproduced claim is the
decomposition and ordering — the API pass is cheap, the interpreter
dominates.
"""

from repro.experiments import fig12

from conftest import record_result


def test_fig12(benchmark):
    result = benchmark.pedantic(
        fig12.run_overheads,
        kwargs=dict(seed=1, duration_ms=20),
        rounds=1, iterations=1)
    for bucket, (avg, p95) in result.overhead_pct.items():
        benchmark.extra_info[f"{bucket}_avg_pct"] = avg
        benchmark.extra_info[f"{bucket}_p95_pct"] = p95
    record_result("Figure 12 — CPU overheads",
                  fig12.format_result(result))
    assert result.packets > 1000
    assert result.overhead_pct["api"][0] < \
        result.overhead_pct["enclave"][0]
    assert result.overhead_pct["interpreter"][0] > 0

"""Setup shim.

The primary metadata lives in pyproject.toml.  This file exists so the
package installs in environments without the ``wheel`` package (where
pip's PEP 517 editable path fails): ``python setup.py develop`` or
``pip install -e . --no-use-pep517 --no-build-isolation`` both work.
"""

from setuptools import setup

setup()
